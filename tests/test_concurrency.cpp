// Concurrency stress suites for the shared sweep stack. These run in the
// default build (plain interleaving stress + invariant checks) and,
// more importantly, under ThreadSanitizer in the POPS_TSAN CI job, where
// any unsynchronized access they provoke is a hard failure. Surfaces:
// the shared ResultCache (lookup/insert/evict at small capacity, the
// initial-delay memo, stats/capacity/visitation admin), PassRegistry
// register-vs-make, Optimizer::run_many under cross-thread contention,
// concurrent Optimizer construction (backend check-and-install), and a
// SweepServer handling concurrent sweeps with per-sweep checkpointing.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "pops/api/api.hpp"
#include "pops/net/client.hpp"
#include "pops/net/server.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/service/result_cache.hpp"
#include "pops/service/sweep.hpp"
#include "pops/timing/sta.hpp"
#include "pops/timing/table_model.hpp"
#include "pops/util/json.hpp"
#include "pops/util/rng.hpp"

namespace {

using namespace pops;

// ----- ResultCache: concurrent lookup / insert / evict ------------------------

TEST(ConcurrencyTest, ResultCacheLookupInsertEvictStress) {
  api::OptContext ctx;
  const netlist::Netlist proto = netlist::make_benchmark(ctx.lib(), "c17");
  const api::PipelineReport proto_report;

  service::ResultCache cache(/*capacity=*/4);
  // circuit_hash varies too: the initial-delay memo keys on the tc-less
  // half of the key (tc_bits ignored), so distinct memo slots need
  // distinct content hashes.
  const auto key_for = [](std::uint64_t i) {
    api::ResultCacheKey key;
    key.circuit_hash = 0x1234 + i;
    key.config_hash = 0x5678;
    key.tc_bits = std::bit_cast<std::uint64_t>(100.0 + double(i));
    key.ctx_bits = 1;
    return key;
  };

  constexpr int kIters = 400;
  constexpr std::uint64_t kKeySpace = 16;

  std::vector<std::thread> threads;
  // Two writers storing overlapping key ranges (first-writer-wins paths)
  // plus the initial-delay memo.
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t k = (std::uint64_t(i) + 5u * w) % kKeySpace;
        cache.store(key_for(k), proto, proto_report);
        cache.store_initial_delay(key_for(k), 42.0 + double(k));
      }
    });
  }
  // A reader hammering lookups (hit copies proceed outside the lock
  // while evictions race) and the memo.
  threads.emplace_back([&] {
    netlist::Netlist scratch = proto;
    api::PipelineReport report;
    for (int i = 0; i < kIters; ++i) {
      const std::uint64_t k = std::uint64_t(i) % kKeySpace;
      if (cache.lookup(key_for(k), scratch, report)) {
        EXPECT_EQ(scratch.size(), proto.size());
      }
      const auto memo = cache.initial_delay_ps(key_for(k));
      if (memo) {
        EXPECT_EQ(*memo, 42.0 + double(k));
      }
    }
  });
  // Admin churn: stats, capacity changes (shrink evicts immediately),
  // and full-snapshot visitation concurrent with everything above.
  threads.emplace_back([&] {
    for (int i = 0; i < kIters / 4; ++i) {
      cache.set_capacity(i % 2 == 0 ? 2 : 6);
      const service::ResultCache::Stats s = cache.stats();
      EXPECT_LE(s.entries, 6u);
      std::size_t visited = 0;
      cache.for_each_entry([&](const api::ResultCacheKey&,
                               const netlist::Netlist& nl,
                               const api::PipelineReport&) {
        EXPECT_EQ(nl.size(), proto.size());
        ++visited;
      });
      EXPECT_LE(visited, 6u);
      cache.for_each_initial_delay(
          [&](const api::ResultCacheKey&, double d) { EXPECT_GE(d, 42.0); });
    }
  });
  for (std::thread& t : threads) t.join();

  const service::ResultCache::Stats s = cache.stats();
  EXPECT_LE(s.entries, cache.capacity());
  EXPECT_EQ(s.capacity, cache.capacity());
  EXPECT_GT(s.evictions, 0u);
}

// ----- PassRegistry: concurrent register / create -----------------------------

class NamedNopPass final : public api::Pass {
 public:
  explicit NamedNopPass(std::string name) : name_(std::move(name)) {}
  std::string_view name() const noexcept override { return name_; }
  void run(netlist::Netlist&, api::OptContext&, const api::OptimizerConfig&,
           double, api::PassReport&) const override {}

 private:
  std::string name_;
};

TEST(ConcurrencyTest, RegistryConcurrentRegisterAndMake) {
  api::PassRegistry reg;  // local instance: the global registry is shared
  constexpr int kThreads = 4;
  constexpr int kPerThread = 32;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string name =
            "stress-t" + std::to_string(t) + "-p" + std::to_string(i);
        reg.register_pass(
            name, [name] { return std::make_unique<NamedNopPass>(name); });
        // Interleave reads and instantiation against other registrars.
        EXPECT_TRUE(reg.contains(name));
        EXPECT_TRUE(reg.contains("protocol"));
        EXPECT_EQ(reg.create(name)->name(), name);
        api::PassPipeline p = reg.make_pipeline({"shield", name, "protocol"});
        EXPECT_EQ(p.size(), 3u);
        EXPECT_GE(reg.names().size(), 5u);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(reg.names().size(), 5u + kThreads * kPerThread);
  // Duplicate registration still throws after the stampede.
  EXPECT_THROW(reg.register_pass(
                   "stress-t0-p0",
                   [] { return std::make_unique<NamedNopPass>("x"); }),
               std::invalid_argument);
}

// ----- run_many under cross-thread contention ---------------------------------

TEST(ConcurrencyTest, RunManyUnderContention) {
  api::OptContext ctx;
  auto cache = std::make_shared<service::ResultCache>();
  ctx.set_result_cache(cache);
  api::Optimizer opt(ctx);
  // Warm before the fan-out: FlimitTable::get only reads on a warm
  // table, which is what makes the shared context safe for workers.
  ctx.warm_flimits();

  const std::vector<std::string> names = {"c17", "c432"};
  constexpr int kThreads = 3;
  constexpr int kRounds = 2;

  std::vector<std::vector<api::PipelineReport>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<netlist::Netlist> circuits;
        for (const std::string& name : names)
          circuits.push_back(netlist::make_benchmark(ctx.lib(), name));
        results[t] =
            opt.run_many_relative(circuits, 0.9, /*n_threads=*/2);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Every thread raced the same shared cache (stores are first-writer-
  // wins, replays bit-identical), so all reports must agree bitwise.
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_EQ(results[t].size(), results[0].size());
    for (std::size_t i = 0; i < results[0].size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(results[t][i].final_delay_ps),
                std::bit_cast<std::uint64_t>(results[0][i].final_delay_ps));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(results[t][i].final_area_um),
                std::bit_cast<std::uint64_t>(results[0][i].final_area_um));
      EXPECT_EQ(results[t][i].met, results[0][i].met);
    }
  }
  EXPECT_GT(cache->stats().hits + cache->stats().misses, 0u);
}

// ----- concurrent Optimizer construction (backend check-and-install) ----------

TEST(ConcurrencyTest, ConcurrentOptimizerConstructionOnSharedContext) {
  api::OptContext ctx;
  // A deliberately coarse table so re-characterization per install is
  // cheap; its selector differs from closed-form, so every alternation
  // really swaps the backend.
  timing::TableModelOptions coarse;
  coarse.slew_grid_ps = {5.0, 50.0};
  coarse.load_grid = {0.5, 8.0};

  constexpr int kThreads = 2;
  constexpr int kIters = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        api::OptimizerConfig cfg;
        if ((i + t) % 2 == 0) cfg.with_delay_model("closed-form");
        else cfg.with_delay_model("table").with_table_model(coarse);
        // Construction-only contention: the selector check and the
        // install are one atomic step (OptContext::ensure_delay_model),
        // so concurrent constructions must neither tear dm_ nor mix a
        // half-cleared Flimit cache. Running is NOT attempted here —
        // run-vs-install stays a documented exclusion, enforced by the
        // server's exec_mu_ and the runtime stale-backend error.
        const api::Optimizer opt(ctx, cfg);
        EXPECT_FALSE(opt.config().delay_model.empty());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Whichever install won last, the context is coherent: selector and
  // backend agree, and a fresh Optimizer with that selection runs.
  api::OptimizerConfig cfg;
  cfg.with_delay_model("closed-form");
  api::Optimizer opt(ctx, cfg);
  netlist::Netlist nl = netlist::make_benchmark(ctx.lib(), "c17");
  const api::PipelineReport report = opt.run_relative(nl, 0.9);
  EXPECT_GT(report.final_delay_ps, 0.0);
}

// ----- level-parallel STA sweeps: determinism under mutation ------------------

// The level-parallel forward/backward sweeps partition each topological
// level across ThreadPool workers; per-node writes are disjoint, so under
// TSan this doubles as a data-race check on the sweep kernels. The
// determinism contract is bitwise: for ANY worker count, every arrival /
// slew / prev / downstream / required value equals the sequential result,
// across a randomly mutated netlist sequence.
TEST(ConcurrencyTest, LevelParallelSweepsDeterministicUnderMutation) {
  api::OptContext ctx;
  netlist::BenchmarkSpec spec;
  spec.n_gates = 3000;  // wide levels: real per-level fan-out
  spec.n_pi = 64;
  spec.n_po = 32;
  spec.path_depth = 16;
  spec.seed = 0xDE7E12u;
  spec.name = "lp_fuzz";
  netlist::Netlist nl = netlist::make_synthetic(ctx.lib(), spec);
  const std::vector<netlist::NodeId> gates = nl.gates();

  util::Rng rng(0x9A11E7u);
  const double lo = ctx.lib().wmin_um();
  const double hi = ctx.lib().wmax_um();
  for (int step = 0; step < 4; ++step) {
    for (int i = 0; i < 8; ++i) {
      const netlist::NodeId g = gates[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(gates.size()) - 1))];
      nl.set_drive(g, lo + (hi - lo) * rng.uniform());
    }

    const timing::Sta seq(nl, ctx.dm());
    const timing::StaResult want = seq.run();
    const std::vector<double> want_down = seq.downstream_delays(want);
    const auto want_req =
        seq.required_times(want, want.critical_delay_ps);

    for (const std::size_t workers : {1u, 2u, 4u}) {
      timing::StaOptions opt;
      opt.level_parallel_workers = workers;
      opt.level_parallel_min_nodes = 0;
      const timing::Sta par(nl, ctx.dm(), opt);
      const timing::StaResult got = par.run();

      ASSERT_EQ(got.arrival_ps.size(), want.arrival_ps.size());
      for (std::size_t i = 0; i < want.arrival_ps.size(); ++i)
        for (std::size_t e = 0; e < 2; ++e) {
          ASSERT_EQ(std::bit_cast<std::uint64_t>(got.arrival_ps[i][e]),
                    std::bit_cast<std::uint64_t>(want.arrival_ps[i][e]))
              << "step " << step << " workers " << workers << " node " << i;
          ASSERT_EQ(std::bit_cast<std::uint64_t>(got.slew_ps[i][e]),
                    std::bit_cast<std::uint64_t>(want.slew_ps[i][e]));
          ASSERT_EQ(got.prev[i][e], want.prev[i][e]);
        }
      ASSERT_EQ(std::bit_cast<std::uint64_t>(got.critical_delay_ps),
                std::bit_cast<std::uint64_t>(want.critical_delay_ps));

      const std::vector<double> got_down = par.downstream_delays(got);
      for (std::size_t v = 0; v < want_down.size(); ++v)
        ASSERT_EQ(std::bit_cast<std::uint64_t>(got_down[v]),
                  std::bit_cast<std::uint64_t>(want_down[v]))
            << "step " << step << " workers " << workers << " vertex " << v;

      const auto got_req = par.required_times(got, want.critical_delay_ps);
      for (std::size_t i = 0; i < want_req.size(); ++i)
        for (std::size_t e = 0; e < 2; ++e)
          ASSERT_EQ(std::bit_cast<std::uint64_t>(got_req[i][e]),
                    std::bit_cast<std::uint64_t>(want_req[i][e]));
    }
  }
}

// ----- SweepServer: concurrent sweeps + checkpointing + stats -----------------

TEST(ConcurrencyTest, ServerConcurrentSweepsWithCheckpointing) {
  const std::string cache_file =
      testing::TempDir() + "/pops_concurrency_cache.bin";
  std::filesystem::remove(cache_file);

  net::SweepServerOptions sopt;
  sopt.cache_file = cache_file;
  sopt.checkpoint_every = 1;  // checkpoint after EVERY sweep
  sopt.n_threads = 2;
  net::SweepServer server(sopt);
  server.start();

  service::SweepSpec spec;
  spec.circuits = {"c17"};
  spec.tc_ratios = {0.85, 0.95};
  spec.n_threads = 2;
  const std::size_t points_per_sweep = spec.n_jobs();

  constexpr int kClients = 3;
  constexpr int kSweepsPerClient = 2;
  std::atomic<bool> done{false};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      net::SweepClient client("127.0.0.1", server.port());
      for (int s = 0; s < kSweepsPerClient; ++s) {
        std::size_t streamed = 0;
        const net::SweepSummary summary = client.submit(
            spec, [&](const util::Json&, const std::string&) { ++streamed; });
        EXPECT_EQ(streamed, points_per_sweep);
        EXPECT_EQ(summary.points, points_per_sweep);
      }
    });
  }
  // A control client hammering stats and save ops mid-sweep. Every
  // stats reply must be internally consistent: the sweeps/points pair
  // is published together with the cache counters, so points always
  // equals sweeps x points_per_sweep and cache traffic never lags the
  // counted points.
  std::thread control([&] {
    net::SweepClient client("127.0.0.1", server.port());
    while (!done.load(std::memory_order_acquire)) {
      const util::Json stats = client.server_stats();
      const std::size_t sweeps = std::size_t(stats.find("sweeps")->as_number());
      const std::size_t points = std::size_t(stats.find("points")->as_number());
      EXPECT_EQ(points, sweeps * points_per_sweep);
      const util::Json& cache = *stats.find("cache");
      const std::size_t hits = std::size_t(cache.find("hits")->as_number());
      const std::size_t misses = std::size_t(cache.find("misses")->as_number());
      EXPECT_GE(hits + misses, points);
      client.save();
      client.ping();
    }
  });

  for (std::thread& t : clients) t.join();
  done.store(true, std::memory_order_release);
  control.join();

  const net::SweepServerStats final_stats = server.stats();
  EXPECT_EQ(final_stats.sweeps, std::size_t(kClients * kSweepsPerClient));
  EXPECT_EQ(final_stats.points,
            std::size_t(kClients * kSweepsPerClient) * points_per_sweep);
  EXPECT_EQ(final_stats.errors, 0u);
  // One compute, the rest replays (exact split depends on interleaving).
  EXPECT_GE(final_stats.cache.hits, 1u);
  EXPECT_GE(final_stats.cache.entries, points_per_sweep);

  server.stop();
  EXPECT_TRUE(std::filesystem::exists(cache_file));
  std::filesystem::remove(cache_file);
}

}  // namespace
