// IncrementalSta — incremental-vs-full equivalence.
//
// The analyzer's contract is *bit-identity*: after any supported mutation
// sequence (gate resizes, buffer insertions with re-pointed sinks), every
// maintained quantity — arrivals, slews, `prev` backtracking state, the
// downstream K-paths bounds, the critical delay/endpoint — must equal a
// cold Sta::run() / Sta::downstream_delays() bit for bit, and the
// enumeration built on top (k_critical_paths) must return identical
// paths. The fuzz suites below drive random mutation sequences on c17 /
// c432 / c880 under BOTH delay-model backends (closed-form and table) and
// assert the identity after every step.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "pops/liberty/library.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/netlist/netlist.hpp"
#include "pops/process/technology.hpp"
#include "pops/timing/incremental_sta.hpp"
#include "pops/timing/sta.hpp"
#include "pops/timing/table_model.hpp"
#include "pops/util/rng.hpp"

namespace {

using namespace pops;
using netlist::Netlist;
using netlist::NodeId;
using timing::ClosedFormModel;
using timing::DelayModel;
using timing::Edge;
using timing::IncrementalSta;
using timing::Sta;
using timing::StaResult;
using timing::TableModel;
using timing::TimedPath;

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Full bitwise comparison of the maintained state against a cold run,
/// including the K-paths enumeration (k = 8).
void expect_bit_identical(const Netlist& nl, const DelayModel& dm,
                          const IncrementalSta& inc, const char* when) {
  const Sta sta(nl, dm);
  const StaResult cold = sta.run();
  const StaResult& warm = inc.result();

  ASSERT_EQ(warm.arrival_ps.size(), cold.arrival_ps.size()) << when;
  for (std::size_t i = 0; i < cold.arrival_ps.size(); ++i) {
    for (std::size_t e = 0; e < 2; ++e) {
      EXPECT_TRUE(same_bits(warm.arrival_ps[i][e], cold.arrival_ps[i][e]))
          << when << ": arrival of node " << i << " edge " << e;
      EXPECT_TRUE(same_bits(warm.slew_ps[i][e], cold.slew_ps[i][e]))
          << when << ": slew of node " << i << " edge " << e;
      EXPECT_EQ(warm.prev[i][e], cold.prev[i][e])
          << when << ": prev of node " << i << " edge " << e;
    }
  }
  EXPECT_TRUE(same_bits(warm.critical_delay_ps, cold.critical_delay_ps))
      << when;
  EXPECT_EQ(warm.critical_endpoint, cold.critical_endpoint) << when;

  const std::vector<double> cold_down = sta.downstream_delays(cold);
  const std::vector<double>& warm_down = inc.downstream();
  ASSERT_EQ(warm_down.size(), cold_down.size()) << when;
  for (std::size_t v = 0; v < cold_down.size(); ++v)
    EXPECT_TRUE(same_bits(warm_down[v], cold_down[v]))
        << when << ": downstream of vertex " << v;

  const std::vector<TimedPath> cold_paths = sta.k_critical_paths(cold, 8);
  const std::vector<TimedPath> warm_paths = inc.k_critical_paths(8);
  ASSERT_EQ(warm_paths.size(), cold_paths.size()) << when;
  for (std::size_t p = 0; p < cold_paths.size(); ++p) {
    EXPECT_TRUE(same_bits(warm_paths[p].delay_ps, cold_paths[p].delay_ps))
        << when << ": path " << p;
    EXPECT_EQ(warm_paths[p].points, cold_paths[p].points)
        << when << ": path " << p;
  }

  // The maintained required/slack vectors must match the monolithic
  // backward sweep bit for bit, at the current critical delay as tc.
  const double tc = cold.critical_delay_ps;
  const std::vector<std::array<double, 2>> cold_req =
      sta.required_times(cold, tc);
  const std::vector<std::array<double, 2>>& warm_req = inc.required_times(tc);
  ASSERT_EQ(warm_req.size(), cold_req.size()) << when;
  for (std::size_t i = 0; i < cold_req.size(); ++i)
    for (std::size_t e = 0; e < 2; ++e)
      EXPECT_TRUE(same_bits(warm_req[i][e], cold_req[i][e]))
          << when << ": required of node " << i << " edge " << e;
  const std::vector<double> cold_slack = sta.slacks(cold, tc);
  const std::vector<double>& warm_slack = inc.slacks(tc);
  ASSERT_EQ(warm_slack.size(), cold_slack.size()) << when;
  for (std::size_t i = 0; i < cold_slack.size(); ++i)
    EXPECT_TRUE(same_bits(warm_slack[i], cold_slack[i]))
        << when << ": slack of node " << i;

  // The built-in checker must agree (it throws on divergence).
  EXPECT_NO_THROW(inc.check_against_full()) << when;
}

/// A random realisable drive for `id`.
double random_drive(const Netlist& nl, util::Rng& rng) {
  const double lo = nl.lib().wmin_um();
  const double hi = nl.lib().wmax_um();
  return lo + (hi - lo) * rng.uniform();
}

struct BackendCase {
  const char* label;
  const DelayModel& dm;
};

class Backends {
 public:
  explicit Backends(const liberty::Library& lib)
      : cf_(lib), tm_(TableModel::characterize(cf_)) {}
  std::vector<BackendCase> cases() const {
    return {{"closed-form", cf_}, {"table", tm_}};
  }

 private:
  ClosedFormModel cf_;
  TableModel tm_;
};

liberty::Library test_lib() {
  return liberty::Library(process::Technology::cmos025());
}

// ----- cold runs --------------------------------------------------------------

TEST(IncrementalSta, ColdRunMatchesSta) {
  const liberty::Library lib = test_lib();
  const Backends backends(lib);
  for (const char* name : {"c17", "c432", "c880"}) {
    for (const BackendCase& bc : backends.cases()) {
      Netlist nl = netlist::make_benchmark(lib, name);
      IncrementalSta inc(nl, bc.dm);
      inc.run_full();
      expect_bit_identical(nl, bc.dm, inc, name);
    }
  }
}

TEST(IncrementalSta, ResultBeforeRunThrows) {
  const liberty::Library lib = test_lib();
  const ClosedFormModel cf(lib);
  Netlist nl = netlist::make_benchmark(lib, "c17");
  IncrementalSta inc(nl, cf);
  EXPECT_FALSE(inc.has_result());
  EXPECT_THROW(inc.result(), std::logic_error);
  EXPECT_THROW(inc.downstream(), std::logic_error);
}

TEST(IncrementalSta, UpdateWithoutRunFullRunsCold) {
  const liberty::Library lib = test_lib();
  const ClosedFormModel cf(lib);
  Netlist nl = netlist::make_benchmark(lib, "c17");
  IncrementalSta inc(nl, cf);
  inc.update({});  // falls back to run_full
  expect_bit_identical(nl, cf, inc, "update-before-run");
}

// ----- no-op updates ----------------------------------------------------------

TEST(IncrementalSta, NoOpUpdateKeepsResult) {
  const liberty::Library lib = test_lib();
  const ClosedFormModel cf(lib);
  Netlist nl = netlist::make_benchmark(lib, "c432");
  IncrementalSta inc(nl, cf);
  inc.run_full();

  // Empty dirty set, and a dirty set whose "mutation" wrote back the
  // identical drive: both must leave the state bit-identical.
  inc.update({});
  expect_bit_identical(nl, cf, inc, "empty dirty set");

  const NodeId g = nl.gates().front();
  nl.set_drive(g, nl.drive(g));
  const std::vector<NodeId> dirty{g};
  inc.update(dirty);
  expect_bit_identical(nl, cf, inc, "identical-size write-back");
}

// ----- fuzz: random resizes ---------------------------------------------------

TEST(IncrementalSta, ResizeFuzzBitIdenticalBothBackends) {
  const liberty::Library lib = test_lib();
  const Backends backends(lib);
  for (const char* name : {"c17", "c432", "c880"}) {
    for (const BackendCase& bc : backends.cases()) {
      SCOPED_TRACE(std::string(name) + " / " + bc.label);
      Netlist nl = netlist::make_benchmark(lib, name);
      const std::vector<NodeId> gates = nl.gates();
      IncrementalSta inc(nl, bc.dm);
      inc.run_full();

      util::Rng rng(0xC0FFEEu);
      const int steps = nl.size() > 100 ? 12 : 25;
      for (int step = 0; step < steps; ++step) {
        const std::size_t k =
            static_cast<std::size_t>(rng.uniform_int(1, 4));
        std::vector<NodeId> dirty;
        for (std::size_t i = 0; i < k; ++i) {
          const NodeId g = gates[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(gates.size()) - 1))];
          nl.set_drive(g, random_drive(nl, rng));
          dirty.push_back(g);  // duplicates allowed by contract
        }
        inc.update(dirty);
        expect_bit_identical(nl, bc.dm, inc, "resize step");
        if (HasFatalFailure()) return;
      }
    }
  }
}

// ----- fuzz: buffer insertion + resizes ---------------------------------------

TEST(IncrementalSta, BufferAndResizeFuzzBitIdenticalBothBackends) {
  const liberty::Library lib = test_lib();
  const Backends backends(lib);
  for (const char* name : {"c17", "c432", "c880"}) {
    for (const BackendCase& bc : backends.cases()) {
      SCOPED_TRACE(std::string(name) + " / " + bc.label);
      Netlist nl = netlist::make_benchmark(lib, name);
      IncrementalSta inc(nl, bc.dm);
      inc.run_full();

      util::Rng rng(0xBEEFu);
      const int steps = nl.size() > 100 ? 8 : 16;
      for (int step = 0; step < steps; ++step) {
        const std::vector<NodeId> gates = nl.gates();  // grows as we insert
        if (rng.uniform() < 0.5) {
          // Insert a buffer that captures a strict subset of a multi-sink
          // net (the shield pass's edit shape), then size it.
          NodeId driver = netlist::kNoNode;
          for (int tries = 0; tries < 50; ++tries) {
            const NodeId cand = gates[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(gates.size()) - 1))];
            if (nl.fanouts(cand).size() >= 2) {
              driver = cand;
              break;
            }
          }
          if (driver == netlist::kNoNode) continue;
          const std::vector<NodeId> sinks = nl.fanouts(driver);
          std::vector<NodeId> moved;
          for (NodeId s : sinks)
            if (moved.empty() || rng.uniform() < 0.5) moved.push_back(s);
          if (moved.size() == sinks.size()) moved.pop_back();
          if (moved.empty()) continue;
          const NodeId buf = nl.insert_buffer(
              driver, liberty::CellKind::Buf,
              nl.fresh_name(nl.node(driver).name + "_fz"), moved);
          nl.set_drive(buf, random_drive(nl, rng));
          std::vector<NodeId> dirty = moved;
          dirty.push_back(driver);
          dirty.push_back(buf);
          inc.update(dirty, /*structure_changed=*/true);
        } else {
          const NodeId g = gates[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(gates.size()) - 1))];
          nl.set_drive(g, random_drive(nl, rng));
          const std::vector<NodeId> dirty{g};
          inc.update(dirty);
        }
        expect_bit_identical(nl, bc.dm, inc, "mutation step");
        if (HasFatalFailure()) return;
      }
    }
  }
}

// ----- structural growth: appended PIs and gates ------------------------------

TEST(IncrementalSta, AppendedInputAndGateBitIdentical) {
  const liberty::Library lib = test_lib();
  const ClosedFormModel cf(lib);
  Netlist nl = netlist::make_benchmark(lib, "c17");
  IncrementalSta inc(nl, cf);
  inc.run_full();

  // Grow the netlist: a fresh PI feeding a new output gate that also
  // loads an existing gate (whose fanout set therefore changes).
  const NodeId x = nl.gates().front();
  const NodeId p = nl.add_input("p_new");
  const NodeId g = nl.add_gate(liberty::CellKind::Nand2, "g_new", {p, x});
  nl.mark_output(g, 25.0);

  const std::vector<NodeId> dirty{p, g, x};
  inc.update(dirty, /*structure_changed=*/true);
  expect_bit_identical(nl, cf, inc, "appended PI + gate");
}

// ----- critical path reconstruction -------------------------------------------

TEST(IncrementalSta, CriticalPathMatchesColdAfterUpdates) {
  const liberty::Library lib = test_lib();
  const ClosedFormModel cf(lib);
  Netlist nl = netlist::make_benchmark(lib, "c432");
  const std::vector<NodeId> gates = nl.gates();
  IncrementalSta inc(nl, cf);
  inc.run_full();

  util::Rng rng(7u);
  for (int step = 0; step < 10; ++step) {
    const NodeId g = gates[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(gates.size()) - 1))];
    nl.set_drive(g, random_drive(nl, rng));
    const std::vector<NodeId> dirty{g};
    inc.update(dirty);

    const Sta sta(nl, cf);
    const StaResult cold = sta.run();
    const TimedPath a = inc.critical_path();
    const TimedPath b = sta.critical_path(cold);
    EXPECT_TRUE(same_bits(a.delay_ps, b.delay_ps));
    EXPECT_EQ(a.points, b.points);
  }
}

// ----- maintained slacks across tc changes ------------------------------------

// The slack/required caches are keyed on the tc bit pattern: queries at a
// new tc re-materialize, queries at the cached tc are maintained
// incrementally. Interleave resizes with queries at several targets and
// demand bitwise identity with the monolithic sweep for every one.
TEST(IncrementalSta, SlacksAtVaryingTcBitIdentical) {
  const liberty::Library lib = test_lib();
  const Backends backends(lib);
  for (const char* name : {"c17", "c432"}) {
    for (const BackendCase& bc : backends.cases()) {
      SCOPED_TRACE(std::string(name) + " / " + bc.label);
      Netlist nl = netlist::make_benchmark(lib, name);
      const std::vector<NodeId> gates = nl.gates();
      IncrementalSta inc(nl, bc.dm);
      inc.run_full();

      util::Rng rng(0x51ACu);
      for (int step = 0; step < 10; ++step) {
        const NodeId g = gates[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(gates.size()) - 1))];
        nl.set_drive(g, random_drive(nl, rng));
        const std::vector<NodeId> dirty{g};
        inc.update(dirty);

        const Sta sta(nl, bc.dm);
        const StaResult cold = sta.run();
        for (const double ratio : {0.8, 1.0, 1.25}) {
          const double tc = ratio * cold.critical_delay_ps;
          const std::vector<double> want = sta.slacks(cold, tc);
          const std::vector<double>& got = inc.slacks(tc);
          ASSERT_EQ(got.size(), want.size());
          for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_TRUE(same_bits(got[i], want[i]))
                << "step " << step << " tc-ratio " << ratio << " node " << i;
          if (HasFatalFailure()) return;
        }
      }
    }
  }
}

}  // namespace
