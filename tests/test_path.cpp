// Tests for the BoundedPath abstraction: extraction from a netlist,
// boundary conditions (fixed input drive / terminal load), sizing
// variables, structural edits and the analytic stage coefficients.

#include <gtest/gtest.h>

#include "pops/liberty/library.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/process/technology.hpp"
#include "pops/timing/path.hpp"
#include "pops/timing/sta.hpp"

namespace {

using namespace pops::timing;
using namespace pops::netlist;
using pops::liberty::CellKind;
using pops::liberty::Library;
using pops::process::Technology;

class PathTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
  ClosedFormModel dm{lib};

  BoundedPath make_path(std::vector<CellKind> kinds,
                        double off3 = 0.0) const {
    std::vector<PathStage> stages;
    for (CellKind k : kinds) {
      PathStage st;
      st.kind = k;
      stages.push_back(st);
    }
    if (off3 > 0.0 && stages.size() > 3) stages[3].off_path_ff = off3;
    return BoundedPath(lib, stages, 2.0 * lib.cref_ff(), 15.0 * lib.cref_ff(),
                       Edge::Rise, dm.default_input_slew_ps());
  }
};

TEST_F(PathTest, ConstructionValidation) {
  EXPECT_THROW(BoundedPath(lib, {}, 1.0, 1.0, Edge::Rise, 10.0),
               std::invalid_argument);
  std::vector<PathStage> one(1);
  EXPECT_THROW(BoundedPath(lib, one, 0.0, 1.0, Edge::Rise, 10.0),
               std::invalid_argument);
  EXPECT_THROW(BoundedPath(lib, one, 1.0, -2.0, Edge::Rise, 10.0),
               std::invalid_argument);
  EXPECT_THROW(BoundedPath(lib, one, 1.0, 1.0, Edge::Rise, 0.0),
               std::invalid_argument);
}

TEST_F(PathTest, EdgesAlternateThroughInvertingCells) {
  const BoundedPath p = make_path(
      {CellKind::Inv, CellKind::Nand2, CellKind::Buf, CellKind::Nor2});
  // Input rises; inv -> fall; nand2 -> rise; buf -> rise; nor2 -> fall.
  EXPECT_EQ(p.out_edge(0), Edge::Fall);
  EXPECT_EQ(p.out_edge(1), Edge::Rise);
  EXPECT_EQ(p.out_edge(2), Edge::Rise);
  EXPECT_EQ(p.out_edge(3), Edge::Fall);
}

TEST_F(PathTest, SetInputEdgeFlipsAll) {
  BoundedPath p = make_path({CellKind::Inv, CellKind::Inv});
  p.set_input_edge(Edge::Fall);
  EXPECT_EQ(p.out_edge(0), Edge::Rise);
  EXPECT_EQ(p.out_edge(1), Edge::Fall);
}

TEST_F(PathTest, Stage0IsFixed) {
  BoundedPath p = make_path({CellKind::Inv, CellKind::Inv});
  EXPECT_THROW(p.set_cin(0, 99.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(p.cin(0), 2.0 * lib.cref_ff());
}

TEST_F(PathTest, SetCinClampsToRealisableRange) {
  BoundedPath p = make_path({CellKind::Inv, CellKind::Inv});
  p.set_cin(1, 1e9);
  EXPECT_DOUBLE_EQ(p.cin(1), p.cin_max(1));
  p.set_cin(1, 0.0);
  EXPECT_DOUBLE_EQ(p.cin(1), p.cin_min(1));
}

TEST_F(PathTest, LoadChainsToTerminal) {
  BoundedPath p = make_path({CellKind::Inv, CellKind::Inv, CellKind::Inv});
  p.set_cin(1, 10.0);
  p.set_cin(2, 12.0);
  EXPECT_NEAR(p.load_ff(0), 10.0, 1e-12);
  EXPECT_NEAR(p.load_ff(1), 12.0, 1e-12);
  EXPECT_NEAR(p.load_ff(2), 15.0 * lib.cref_ff(), 1e-12);
  EXPECT_GT(p.total_load_ff(1), p.load_ff(1));  // adds own parasitic
}

TEST_F(PathTest, DelayIsSumOfStageDelays) {
  const BoundedPath p =
      make_path({CellKind::Inv, CellKind::Nand2, CellKind::Nor2});
  const auto per_stage = p.stage_delays_ps(dm);
  double sum = 0.0;
  for (double d : per_stage) sum += d;
  EXPECT_NEAR(p.delay_ps(dm), sum, 1e-9);
  EXPECT_EQ(per_stage.size(), 3u);
  for (double d : per_stage) EXPECT_GT(d, 0.0);
}

TEST_F(PathTest, UpsizingALoadedStageCutsDelay) {
  BoundedPath p = make_path(
      {CellKind::Inv, CellKind::Inv, CellKind::Inv, CellKind::Inv, CellKind::Inv},
      /*off3=*/40.0 * lib.cref_ff());
  const double before = p.delay_ps(dm);
  p.set_cin(3, p.cin(3) * 4.0);  // drive the overloaded node harder
  EXPECT_LT(p.delay_ps(dm), before);
}

TEST_F(PathTest, AreaMatchesCellWidths) {
  BoundedPath p = make_path({CellKind::Inv, CellKind::Nand2});
  double expect = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const auto& c = p.cell(i);
    expect += c.total_width_um(c.wn_for_cin(lib.tech(), p.cin(i)));
  }
  EXPECT_NEAR(p.area_um(), expect, 1e-12);
}

TEST_F(PathTest, NormalizedSizeInCrefUnits) {
  BoundedPath p = make_path({CellKind::Inv, CellKind::Inv});
  double sum = p.cin(0) + p.cin(1);
  EXPECT_NEAR(p.normalized_size(), sum / lib.cref_ff(), 1e-12);
}

TEST_F(PathTest, NumericSensitivityMatchesStructure) {
  // dT/dCIN(i) should be negative when stage i is undersized for its load
  // and approach A_{i-1}/CIN(i-1) > 0 as stage i grows huge.
  BoundedPath p = make_path(
      {CellKind::Inv, CellKind::Inv, CellKind::Inv, CellKind::Inv},
      /*off3=*/30.0 * lib.cref_ff());
  EXPECT_LT(p.numeric_sensitivity(dm, 3), 0.0);  // loaded + minimum size
  p.set_cin(3, p.cin_max(3));
  EXPECT_GT(p.numeric_sensitivity(dm, 3), 0.0);  // grossly oversized
  EXPECT_THROW(p.numeric_sensitivity(dm, 0), std::invalid_argument);
}

TEST_F(PathTest, InsertStageTakesOverOffPathLoad) {
  BoundedPath p = make_path(
      {CellKind::Inv, CellKind::Inv, CellKind::Inv, CellKind::Inv, CellKind::Inv},
      /*off3=*/25.0 * lib.cref_ff());
  const double off_before = p.stage(3).off_path_ff;
  ASSERT_GT(off_before, 0.0);
  p.insert_stage_after(3, CellKind::Buf, 2.0 * lib.cref_ff(), true);
  EXPECT_EQ(p.size(), 6u);
  EXPECT_EQ(p.stage(4).kind, CellKind::Buf);
  EXPECT_DOUBLE_EQ(p.stage(3).off_path_ff, 0.0);
  EXPECT_DOUBLE_EQ(p.stage(4).off_path_ff, off_before);
}

TEST_F(PathTest, InsertStageWithoutTakeover) {
  BoundedPath p = make_path(
      {CellKind::Inv, CellKind::Inv, CellKind::Inv, CellKind::Inv, CellKind::Inv},
      /*off3=*/25.0 * lib.cref_ff());
  const double off_before = p.stage(3).off_path_ff;
  p.insert_stage_after(3, CellKind::Buf, 2.0 * lib.cref_ff(), false);
  EXPECT_DOUBLE_EQ(p.stage(3).off_path_ff, off_before);
  EXPECT_DOUBLE_EQ(p.stage(4).off_path_ff, 0.0);
}

TEST_F(PathTest, ReplaceStageReclampsAndReedges) {
  BoundedPath p = make_path({CellKind::Inv, CellKind::Nor2, CellKind::Inv});
  const Edge last_before = p.out_edge(2);
  p.replace_stage(1, CellKind::Buf);  // inverting -> non-inverting
  EXPECT_EQ(p.stage(1).kind, CellKind::Buf);
  EXPECT_NE(p.out_edge(2), last_before);
}

TEST_F(PathTest, SizableFlagFreezesStage) {
  BoundedPath p = make_path({CellKind::Inv, CellKind::Inv, CellKind::Inv});
  EXPECT_FALSE(p.sizable(0));  // stage 0 always fixed
  EXPECT_TRUE(p.sizable(1));
  p.set_sizable(1, false);
  EXPECT_FALSE(p.sizable(1));
}

TEST_F(PathTest, ExtractFromNetlistFreezesOffPathLoads) {
  // g drives both the next path gate and an off-path sink + wire cap.
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_gate(CellKind::Inv, "g1", {a});
  const NodeId g2 = nl.add_gate(CellKind::Inv, "g2", {g1});
  const NodeId off = nl.add_gate(CellKind::Nand2, "off", {g1, a});
  nl.mark_output(g2, 18.0);
  nl.mark_output(off, 3.0);
  nl.set_wire_cap(g1, 5.0);
  nl.set_drive(g1, 1.1);
  nl.set_drive(g2, 1.7);

  // Extract the a -> g1 -> g2 path explicitly (the off-branch through the
  // NAND2 may or may not be critical; extract() takes any STA path).
  TimedPath tp;
  tp.points = {{a, Edge::Rise}, {g1, Edge::Fall}, {g2, Edge::Rise}};
  const BoundedPath bp = BoundedPath::extract(nl, tp, 40.0);

  ASSERT_EQ(bp.size(), 2u);
  EXPECT_EQ(bp.stage(0).node, g1);
  EXPECT_EQ(bp.stage(1).node, g2);
  // Stage 0 off-path: wire (5.0) + off-sink input cap.
  EXPECT_NEAR(bp.stage(0).off_path_ff, 5.0 + nl.cin_ff(off), 1e-9);
  // Terminal = g2's PO load.
  EXPECT_NEAR(bp.terminal_ff(), 18.0, 1e-9);
  // CINs mirror the netlist drives.
  EXPECT_NEAR(bp.cin(0), nl.cin_ff(g1), 1e-12);
  EXPECT_NEAR(bp.cin(1), nl.cin_ff(g2), 1e-12);
}

TEST_F(PathTest, ExtractedDelayMatchesStaArrival) {
  // On a pure chain (no reconvergence) the bounded-path delay with the
  // PI slew must equal the STA critical delay.
  Netlist nl =
      make_chain(lib, {CellKind::Inv, CellKind::Nand2, CellKind::Inv}, 12.0);
  StaOptions so;
  so.pi_slew_ps = 33.0;
  const Sta sta(nl, dm, so);
  const StaResult r = sta.run();
  const TimedPath tp = sta.critical_path(r);
  const BoundedPath bp = BoundedPath::extract(nl, tp, 33.0);
  EXPECT_NEAR(bp.delay_ps(dm), r.critical_delay_ps,
              1e-6 * r.critical_delay_ps);
}

TEST_F(PathTest, ApplySizesRoundTrip) {
  Netlist nl =
      make_chain(lib, {CellKind::Inv, CellKind::Inv, CellKind::Inv}, 9.0);
  const Sta sta(nl, dm);
  const TimedPath tp = sta.critical_path(sta.run());
  BoundedPath bp = BoundedPath::extract(nl, tp, 40.0);
  bp.set_cin(1, 13.0);
  bp.set_cin(2, 17.0);
  bp.apply_sizes_to(nl);
  const BoundedPath back = BoundedPath::extract(nl, tp, 40.0);
  EXPECT_NEAR(back.cin(1), 13.0, 1e-9);
  EXPECT_NEAR(back.cin(2), 17.0, 1e-9);
}

TEST_F(PathTest, SetCinsValidatesFixedHead) {
  BoundedPath p = make_path({CellKind::Inv, CellKind::Inv});
  std::vector<double> cins = p.cins();
  cins[1] *= 2.0;
  EXPECT_NO_THROW(p.set_cins(cins));
  cins[0] *= 2.0;
  EXPECT_THROW(p.set_cins(cins), std::invalid_argument);
  EXPECT_THROW(p.set_cins({1.0}), std::invalid_argument);
}

}  // namespace
