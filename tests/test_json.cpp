// The util::Json value tree: deterministic formatting (key order, number
// round-trip), escaping, and the build API.

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "pops/util/json.hpp"

namespace {

using pops::util::Json;

TEST(Json, DefaultIsNull) {
  EXPECT_TRUE(Json{}.is_null());
  EXPECT_EQ(Json{}.dump(), "null");
}

TEST(Json, Scalars) {
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(std::size_t{7}).dump(), "7");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, IntegersHaveNoFraction) {
  EXPECT_EQ(Json::number_to_string(24.0), "24");
  EXPECT_EQ(Json::number_to_string(-3.0), "-3");
  EXPECT_EQ(Json::number_to_string(0.0), "0");
}

TEST(Json, NumbersRoundTrip) {
  // The formatter must pick the shortest representation that parses back
  // to the same bits.
  for (const double v : {0.1, 1.0 / 3.0, 251.56979716370347, 1e-300, 2.5e17,
                         -0.97, 3.141592653589793}) {
    const std::string s = Json::number_to_string(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(Json, NonFiniteSerializesAsNull) {
  EXPECT_EQ(Json::number_to_string(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(Json::number_to_string(std::numeric_limits<double>::quiet_NaN()),
            "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd\te").dump(), "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectKeepsInsertionOrder) {
  Json j = Json::object();
  j["zulu"] = 1;
  j["alpha"] = 2;
  j["mike"] = 3;
  EXPECT_EQ(j.dump(0), "{\"zulu\":1,\"alpha\":2,\"mike\":3}");
}

TEST(Json, NestedPrettyAndCompact) {
  Json j = Json::object();
  j["name"] = "c17";
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back(2);
  j["tc"] = std::move(arr);
  j["meta"] = Json::object();
  j["meta"]["ok"] = true;

  EXPECT_EQ(j.dump(0), "{\"name\":\"c17\",\"tc\":[1,2],\"meta\":{\"ok\":true}}");
  EXPECT_EQ(j.dump(2),
            "{\n  \"name\": \"c17\",\n  \"tc\": [\n    1,\n    2\n  ],\n"
            "  \"meta\": {\n    \"ok\": true\n  }\n}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().dump(2), "[]");
  EXPECT_EQ(Json::object().dump(2), "{}");
}

TEST(Json, NullPromotesOnFirstUse) {
  Json j;  // null
  j.push_back(1);
  EXPECT_EQ(j.dump(0), "[1]");
  Json o;  // null
  o["k"] = "v";
  EXPECT_EQ(o.dump(0), "{\"k\":\"v\"}");
}

TEST(Json, KindMismatchThrows) {
  Json arr = Json::array();
  EXPECT_THROW(arr["key"], std::logic_error);
  Json obj = Json::object();
  EXPECT_THROW(obj.push_back(1), std::logic_error);
}

TEST(Json, FindAndSize) {
  Json j = Json::object();
  j.set("a", 1).set("b", 2);
  EXPECT_EQ(j.size(), 2u);
  ASSERT_NE(j.find("a"), nullptr);
  EXPECT_EQ(j.find("a")->dump(), "1");
  EXPECT_EQ(j.find("missing"), nullptr);
  EXPECT_EQ(Json(5.0).find("x"), nullptr);
}

TEST(Json, OverwriteKeepsPosition) {
  Json j = Json::object();
  j["first"] = 1;
  j["second"] = 2;
  j["first"] = 10;  // overwrite must not move the key to the back
  EXPECT_EQ(j.dump(0), "{\"first\":10,\"second\":2}");
  EXPECT_EQ(j.size(), 2u);
}

TEST(Json, DeterministicAcrossBuilds) {
  // Same content, built twice -> same bytes (what sweep-report diffing
  // relies on).
  const auto build = [] {
    Json j = Json::object();
    j["x"] = 0.1;
    j["y"] = Json::array();
    j["y"].push_back(1.0 / 3.0);
    return j.dump(2);
  };
  EXPECT_EQ(build(), build());
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e3").as_number(), -2500.0);
  EXPECT_DOUBLE_EQ(Json::parse("0.125").as_number(), 0.125);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(Json::parse("  \"ws\"  ").as_string(), "ws");
}

TEST(JsonParse, Structures) {
  const Json j = Json::parse(R"({"a": [1, 2, 3], "b": {"c": true}, "d": ""})");
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.size(), 3u);
  ASSERT_NE(j.find("a"), nullptr);
  EXPECT_EQ(j.find("a")->items().size(), 3u);
  EXPECT_DOUBLE_EQ(j.find("a")->items()[1].as_number(), 2.0);
  EXPECT_TRUE(j.find("b")->find("c")->as_bool());
  EXPECT_EQ(j.find("d")->as_string(), "");
  EXPECT_TRUE(Json::parse("[]").items().empty());
  EXPECT_TRUE(Json::parse("{}").members().empty());
}

TEST(JsonParse, MemberOrderIsParseOrder) {
  // The tree keeps insertion order, so parse -> dump round-trips the
  // document byte-for-byte (modulo formatting).
  const std::string text = R"({"z":1,"a":[true,null],"m":"x"})";
  EXPECT_EQ(Json::parse(text).dump(0), text);
}

TEST(JsonParse, DumpParseRoundTripsNumbers) {
  for (const double v : {0.1, 1.0 / 3.0, 251.56979716370347, 1e-300, 2.5e17,
                         -0.97, 3.141592653589793}) {
    EXPECT_EQ(Json::parse(Json::number_to_string(v)).as_number(), v);
  }
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(Json::parse(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
  // Escaped strings written by dump() parse back to the original.
  const std::string weird = "line\nquote\"tab\tctrl\x01";
  EXPECT_EQ(Json::parse(Json(weird).dump(0)).as_string(), weird);
}

TEST(JsonParse, ErrorsCarryPositionAndReason) {
  const auto expect_error = [](const char* text, const char* fragment) {
    try {
      Json::parse(text);
      FAIL() << "expected parse failure for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << text << " -> " << e.what();
    }
  };
  expect_error("", "unexpected end of input");
  expect_error("{\"a\": 1,}", "expected object key string");
  expect_error("[1, 2", "unexpected end of input");
  expect_error("[1 2]", "expected ',' or ']'");
  expect_error("{\"a\" 1}", "expected ':'");
  expect_error("tru", "invalid literal");
  expect_error("01", "trailing characters");
  expect_error("1.", "expected digits after decimal point");
  expect_error("\"abc", "unterminated string");
  expect_error("\"\\q\"", "invalid escape");
  expect_error("\"\\ud83d\"", "unpaired surrogate");
  expect_error("{\"a\":1,\"a\":2}", "duplicate object key");
  expect_error("[1] []", "trailing characters");
}

TEST(JsonParse, DeepNestingIsADiagnosticNotAStackOverflow) {
  // Untrusted spec files must not be able to exhaust the stack.
  const std::string deep(100000, '[');
  EXPECT_THROW(Json::parse(deep), std::invalid_argument);
  // Reasonable nesting still parses.
  std::string ok;
  for (int i = 0; i < 50; ++i) ok += '[';
  ok += "1";
  for (int i = 0; i < 50; ++i) ok += ']';
  EXPECT_NO_THROW(Json::parse(ok));
}

TEST(JsonParse, TypedAccessorsRejectWrongKinds) {
  EXPECT_THROW(Json::parse("1").as_string(), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"s\"").as_number(), std::invalid_argument);
  EXPECT_THROW(Json::parse("[]").members(), std::invalid_argument);
  EXPECT_THROW(Json::parse("{}").items(), std::invalid_argument);
  EXPECT_THROW(Json::parse("null").as_bool(), std::invalid_argument);
}

}  // namespace
