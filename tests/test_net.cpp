// The pops::net daemon: loopback integration. A spec submitted through
// SweepServer with record_runtimes=false must stream point records
// byte-identical — exact bytes, no scrubbing — to an in-process
// SweepService run serialized with SerializeOptions{.measured=false},
// under concurrent clients; a cache-file restart must serve the
// resubmitted spec entirely from the persisted cache, again byte-exact.
// Cache provenance (hits/misses) is asserted via the done-event summary
// instead of per-record flags. Plus protocol plumbing: control ops,
// inline .bench shipping, error events, and line framing.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "pops/api/api.hpp"
#include "pops/net/client.hpp"
#include "pops/net/protocol.hpp"
#include "pops/net/server.hpp"
#include "pops/net/socket.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/service/serialize.hpp"
#include "pops/service/sweep.hpp"

namespace {

using namespace pops;
using net::SweepClient;
using net::SweepServer;
using net::SweepServerOptions;
using net::SweepSummary;
using service::SweepSpec;
using util::Json;

SweepSpec small_spec() {
  SweepSpec spec;
  spec.circuits = {"c17", "c432"};
  spec.tc_ratios = {0.85, 0.95};
  spec.n_threads = 2;
  return spec;
}

/// The reference: the same spec run in-process, records dumped without
/// the measured section — exactly like the daemon streams them for a
/// record_runtimes=false submission.
std::vector<std::string> in_process_records(const SweepSpec& spec) {
  api::OptContext ctx;
  service::SweepService sweeps(ctx);
  std::vector<std::string> records;
  sweeps.run(
      spec,
      [&ctx](const std::string& name) {
        return netlist::make_benchmark(ctx.lib(), name);
      },
      [&records](const service::SweepPoint& point) {
        records.push_back(
            service::to_json(point, {.measured = false}).dump(0));
      });
  return records;
}

/// Submit with record_runtimes=false (no inline benches, default PO
/// load) and collect the raw record lines.
SweepSummary submit_exact(SweepClient& client, const SweepSpec& spec,
                          std::vector<std::string>& records) {
  return client.submit(
      spec,
      [&records](const Json&, const std::string& raw) {
        records.push_back(raw);
      },
      /*bench=*/{}, /*po_load_ff=*/12.0, /*record_runtimes=*/false);
}

TEST(SweepServer, StreamsRecordsBitIdenticalToInProcessRun) {
  const SweepSpec spec = small_spec();
  const std::vector<std::string> expected = in_process_records(spec);
  ASSERT_EQ(expected.size(), 4u);

  SweepServer server;  // ephemeral port, in-memory cache
  server.start();
  SweepClient client("127.0.0.1", server.port());

  std::vector<std::string> streamed;
  const SweepSummary summary = submit_exact(client, spec, streamed);
  EXPECT_EQ(summary.points, 4u);
  EXPECT_EQ(summary.cache_misses, 4u);
  // Exact bytes, record for record: without the measured section the
  // stream is a pure function of the spec.
  ASSERT_EQ(streamed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(streamed[i], expected[i]) << i;

  // Resubmission over the same connection replays from the shared
  // cache — byte-exact; provenance shows up in the summary counters.
  std::vector<std::string> replayed;
  const SweepSummary again = submit_exact(client, spec, replayed);
  EXPECT_EQ(again.points, 4u);
  EXPECT_EQ(again.cache_hits, 4u);
  EXPECT_EQ(again.cache_misses, 0u);
  ASSERT_EQ(replayed.size(), streamed.size());
  for (std::size_t i = 0; i < streamed.size(); ++i)
    EXPECT_EQ(replayed[i], streamed[i]) << i;
  server.stop();
}

TEST(SweepServer, DefaultSubmissionQuarantinesMeasurementsInReport) {
  // The default (record_runtimes=true) stream carries its measurements
  // in the report's trailing "measured" object — from_cache plus the
  // wall-clock fields — keeping the deterministic body untouched.
  SweepServer server;
  server.start();
  SweepClient client("127.0.0.1", server.port());

  SweepSpec spec;
  spec.circuits = {"c17"};
  spec.tc_ratios = {0.9};
  std::vector<Json> points;
  client.submit(spec, [&points](const Json& point, const std::string&) {
    points.push_back(point);
  });
  ASSERT_EQ(points.size(), 1u);
  const Json* measured = points[0].find("report")->find("measured");
  ASSERT_NE(measured, nullptr);
  EXPECT_FALSE(measured->find("from_cache")->as_bool());
  EXPECT_TRUE(measured->find("runtime_ms")->is_number());

  // The replay restores the cached report but re-stamps provenance.
  points.clear();
  client.submit(spec, [&points](const Json& point, const std::string&) {
    points.push_back(point);
  });
  ASSERT_EQ(points.size(), 1u);
  EXPECT_TRUE(points[0]
                  .find("report")
                  ->find("measured")
                  ->find("from_cache")
                  ->as_bool());
  server.stop();
}

TEST(SweepServer, ConcurrentClientsGetTheirOwnStreams) {
  const SweepSpec spec = small_spec();
  const std::vector<std::string> expected = in_process_records(spec);

  SweepServer server;
  server.start();

  // >= 2 concurrent clients, same spec: each must receive the complete,
  // correctly ordered record stream on its own connection (the server
  // serializes execution; the second submission is served from cache).
  constexpr int kClients = 3;
  std::vector<std::vector<std::string>> streams(kClients);
  std::vector<SweepSummary> summaries(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SweepClient client("127.0.0.1", server.port());
      summaries[c] = submit_exact(client, spec, streams[c]);
    });
  }
  for (std::thread& t : clients) t.join();

  std::size_t total_hits = 0;
  std::size_t total_misses = 0;
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(summaries[c].points, expected.size()) << "client " << c;
    ASSERT_EQ(streams[c].size(), expected.size()) << "client " << c;
    for (std::size_t i = 0; i < expected.size(); ++i)
      // Exact bytes against the in-process reference — which also makes
      // every client's stream identical to every other's, whether it
      // executed fresh or replayed the cache.
      EXPECT_EQ(streams[c][i], expected[i])
          << "client " << c << " record " << i;
    total_hits += summaries[c].cache_hits;
    total_misses += summaries[c].cache_misses;
  }
  // The grid is computed once; every other client replays it.
  EXPECT_EQ(total_misses, expected.size());
  EXPECT_EQ(total_hits, expected.size() * (kClients - 1));
  server.stop();
}

TEST(SweepServer, CacheFileRestartServesEverythingFromCache) {
  const std::string path =
      ::testing::TempDir() + "pops_net_restart_cache.json";
  std::remove(path.c_str());
  const SweepSpec spec = small_spec();

  std::vector<std::string> first_run;
  {
    SweepServerOptions opt;
    opt.cache_file = path;
    SweepServer server(opt);
    const service::CacheLoadReport loaded = server.start();
    EXPECT_EQ(loaded.entries_loaded, 0u);  // cold start
    SweepClient client("127.0.0.1", server.port());
    const SweepSummary summary = submit_exact(client, spec, first_run);
    EXPECT_EQ(summary.cache_misses, 4u);
    client.shutdown_server();
    server.wait();
    server.stop();  // flushes the cache file
  }

  {
    SweepServerOptions opt;
    opt.cache_file = path;
    SweepServer server(opt);
    const service::CacheLoadReport loaded = server.start();
    EXPECT_EQ(loaded.entries_loaded, 4u);
    EXPECT_TRUE(loaded.problems.empty());
    SweepClient client("127.0.0.1", server.port());
    std::vector<std::string> warm_run;
    const SweepSummary summary = submit_exact(client, spec, warm_run);
    // ALL points served from the persisted cache — the summary counters
    // carry the provenance — and the stream is byte-exact against the
    // pre-restart run.
    EXPECT_EQ(summary.cache_hits, 4u);
    EXPECT_EQ(summary.cache_misses, 0u);
    ASSERT_EQ(warm_run.size(), first_run.size());
    for (std::size_t i = 0; i < warm_run.size(); ++i)
      EXPECT_EQ(warm_run[i], first_run[i]) << i;
    server.stop();
  }
  std::remove(path.c_str());
}

TEST(SweepServer, InlineBenchSourcesResolveBeforeBuiltins) {
  SweepServer server;
  server.start();
  SweepClient client("127.0.0.1", server.port());

  // A tiny hand-written circuit shipped inline — no built-in fallback.
  const std::string bench =
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
  SweepSpec spec;
  spec.circuits = {"tiny"};
  spec.tc_ratios = {0.9};

  std::vector<Json> points;
  const SweepSummary summary = client.submit(
      spec,
      [&points](const Json& point, const std::string&) {
        points.push_back(point);
      },
      {{"tiny", bench}}, /*po_load_ff=*/9.0);
  EXPECT_EQ(summary.points, 1u);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].find("circuit")->as_string(), "tiny");
  server.stop();
}

TEST(SweepServer, ControlOpsAndErrorEvents) {
  SweepServer server;
  server.start();
  SweepClient client("127.0.0.1", server.port());

  EXPECT_EQ(net::event_name(client.ping()), "pong");

  const Json stats = client.server_stats();
  EXPECT_EQ(net::event_name(stats), "stats");
  ASSERT_NE(stats.find("cache"), nullptr);
  EXPECT_TRUE(stats.find("cache")->find("entries")->is_number());

  // An invalid spec (empty circuits) must come back as an error event
  // that throws client-side — and the connection stays usable.
  SweepSpec bad;
  bad.tc_ratios = {0.9};
  EXPECT_THROW(client.submit(bad), std::runtime_error);
  EXPECT_EQ(net::event_name(client.ping()), "pong");

  // Unknown circuit: make_benchmark throws server-side -> error event.
  SweepSpec unknown;
  unknown.circuits = {"no-such-circuit"};
  unknown.tc_ratios = {0.9};
  EXPECT_THROW(client.submit(unknown), std::runtime_error);
  EXPECT_EQ(net::event_name(client.ping()), "pong");
  EXPECT_GE(server.stats().errors, 2u);
  server.stop();
}

TEST(SweepServer, MalformedLinesAnswerWithErrors) {
  SweepServer server;
  server.start();
  net::TcpStream raw = net::TcpStream::connect("127.0.0.1", server.port());
  std::string line;

  raw.write_line("this is not json");
  ASSERT_TRUE(raw.read_line(line));
  EXPECT_EQ(net::event_name(Json::parse(line)), "error");

  raw.write_line(R"({"op": "frobnicate"})");
  ASSERT_TRUE(raw.read_line(line));
  const Json reply = Json::parse(line);
  EXPECT_EQ(net::event_name(reply), "error");
  EXPECT_NE(reply.find("message")->as_string().find("unknown op"),
            std::string::npos);

  raw.write_line(R"({"op": "sweep"})");  // missing spec
  ASSERT_TRUE(raw.read_line(line));
  EXPECT_EQ(net::event_name(Json::parse(line)), "error");
  server.stop();
}

TEST(SweepServer, ShutdownOpStopsWait) {
  SweepServer server;
  server.start();
  std::thread waiter([&server] { server.wait(); });
  SweepClient client("127.0.0.1", server.port());
  EXPECT_EQ(net::event_name(client.shutdown_server()), "bye");
  waiter.join();  // wait() released by the op
  server.stop();
}

TEST(TcpStream, LineFramingAndBounds) {
  net::TcpListener listener = net::TcpListener::bind("127.0.0.1", 0);
  net::TcpStream client =
      net::TcpStream::connect("127.0.0.1", listener.port());
  net::TcpStream peer{listener.accept()};
  ASSERT_TRUE(peer.valid());

  client.write_line("alpha");
  client.write_line("beta");
  std::string line;
  ASSERT_TRUE(peer.read_line(line));
  EXPECT_EQ(line, "alpha");
  ASSERT_TRUE(peer.read_line(line));
  EXPECT_EQ(line, "beta");

  // Oversized line -> bounded read throws instead of buffering forever.
  client.write_line(std::string(4096, 'x'));
  EXPECT_THROW(peer.read_line(line, 16), std::runtime_error);

  // EOF after half-close.
  net::TcpStream client2 =
      net::TcpStream::connect("127.0.0.1", listener.port());
  net::TcpStream peer2{listener.accept()};
  client2.write_line("last");
  client2.shutdown_write();
  ASSERT_TRUE(peer2.read_line(line));
  EXPECT_EQ(line, "last");
  EXPECT_FALSE(peer2.read_line(line));
  listener.close();
}

}  // namespace
