// The pops::net daemon: loopback integration. A spec submitted through
// SweepServer must stream point records byte-identical to an in-process
// SweepService run of the same spec, under concurrent clients; a
// cache-file restart must serve the resubmitted spec entirely from the
// persisted cache. Plus protocol plumbing: control ops, inline .bench
// shipping, error events, and line framing.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "pops/api/api.hpp"
#include "pops/net/client.hpp"
#include "pops/net/protocol.hpp"
#include "pops/net/server.hpp"
#include "pops/net/socket.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/service/serialize.hpp"
#include "pops/service/sweep.hpp"

namespace {

using namespace pops;
using net::SweepClient;
using net::SweepServer;
using net::SweepServerOptions;
using net::SweepSummary;
using service::SweepSpec;
using util::Json;

SweepSpec small_spec() {
  SweepSpec spec;
  spec.circuits = {"c17", "c432"};
  spec.tc_ratios = {0.85, 0.95};
  spec.n_threads = 2;
  return spec;
}

/// Parse a streamed record and neutralize report.from_cache — the one
/// field allowed to differ between a fresh run and a *replay of that
/// run* (replays restore the stored report verbatim, runtimes included).
std::string scrub_from_cache(const std::string& raw) {
  Json record = Json::parse(raw);
  (*record.find("report")->find("from_cache")) = false;
  return record.dump(0);
}

/// Additionally zero the measured runtimes: two *independent fresh
/// executions* (in-process reference vs daemon) compute bit-identical
/// results but cannot measure bit-identical wall clocks.
std::string scrub_timing(const std::string& raw) {
  Json record = Json::parse(raw);
  Json& report = *record.find("report");
  (*report.find("from_cache")) = false;
  (*report.find("runtime_ms")) = 0.0;
  Json& passes = *report.find("passes");
  for (std::size_t i = 0; i < passes.size(); ++i)
    (*passes.at(i).find("runtime_ms")) = 0.0;
  return record.dump(0);
}

/// The reference: the same spec run in-process, records dumped exactly
/// like the daemon streams them.
std::vector<std::string> in_process_records(const SweepSpec& spec) {
  api::OptContext ctx;
  service::SweepService sweeps(ctx);
  std::vector<std::string> records;
  sweeps.run(
      spec,
      [&ctx](const std::string& name) {
        return netlist::make_benchmark(ctx.lib(), name);
      },
      [&records](const service::SweepPoint& point) {
        records.push_back(service::to_json(point).dump(0));
      });
  return records;
}

TEST(SweepServer, StreamsRecordsBitIdenticalToInProcessRun) {
  const SweepSpec spec = small_spec();
  const std::vector<std::string> expected = in_process_records(spec);
  ASSERT_EQ(expected.size(), 4u);

  SweepServer server;  // ephemeral port, in-memory cache
  server.start();
  SweepClient client("127.0.0.1", server.port());

  std::vector<std::string> streamed;
  const SweepSummary summary = client.submit(
      spec, [&streamed](const Json&, const std::string& raw) {
        streamed.push_back(raw);
      });
  EXPECT_EQ(summary.points, 4u);
  EXPECT_EQ(summary.cache_misses, 4u);
  // Byte-identical record for record, modulo measured wall clocks (two
  // independent executions cannot time identically).
  ASSERT_EQ(streamed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(scrub_timing(streamed[i]), scrub_timing(expected[i])) << i;

  // Resubmission over the same connection replays from the shared cache,
  // bit-identically modulo the from_cache flag.
  std::vector<std::string> replayed;
  const SweepSummary again = client.submit(
      spec, [&replayed](const Json& point, const std::string& raw) {
        const Json* report = point.find("report");
        ASSERT_NE(report, nullptr);
        EXPECT_TRUE(report->find("from_cache")->as_bool());
        replayed.push_back(raw);
      });
  EXPECT_EQ(again.points, 4u);
  EXPECT_EQ(again.cache_hits, 4u);
  EXPECT_EQ(again.cache_misses, 0u);
  // Replays restore the stored reports verbatim — runtimes included —
  // so only the from_cache flag may differ from the daemon's first run.
  ASSERT_EQ(replayed.size(), streamed.size());
  for (std::size_t i = 0; i < streamed.size(); ++i)
    EXPECT_EQ(scrub_from_cache(replayed[i]), scrub_from_cache(streamed[i]))
        << i;
  server.stop();
}

TEST(SweepServer, ConcurrentClientsGetTheirOwnStreams) {
  const SweepSpec spec = small_spec();
  const std::vector<std::string> expected = in_process_records(spec);

  SweepServer server;
  server.start();

  // >= 2 concurrent clients, same spec: each must receive the complete,
  // correctly ordered record stream on its own connection (the server
  // serializes execution; the second submission is served from cache).
  constexpr int kClients = 3;
  std::vector<std::vector<std::string>> streams(kClients);
  std::vector<SweepSummary> summaries(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SweepClient client("127.0.0.1", server.port());
      summaries[c] = client.submit(
          spec, [&streams, c](const Json&, const std::string& raw) {
            streams[c].push_back(raw);
          });
    });
  }
  for (std::thread& t : clients) t.join();

  std::size_t total_hits = 0;
  std::size_t total_misses = 0;
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(summaries[c].points, expected.size()) << "client " << c;
    ASSERT_EQ(streams[c].size(), expected.size()) << "client " << c;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      // Same results as the in-process reference (modulo wall clocks) —
      // and byte-identical across clients modulo from_cache, because
      // whichever client executed first populated the cache the others
      // replay verbatim.
      EXPECT_EQ(scrub_timing(streams[c][i]), scrub_timing(expected[i]))
          << "client " << c << " record " << i;
      EXPECT_EQ(scrub_from_cache(streams[c][i]),
                scrub_from_cache(streams[0][i]))
          << "client " << c << " record " << i;
    }
    total_hits += summaries[c].cache_hits;
    total_misses += summaries[c].cache_misses;
  }
  // The grid is computed once; every other client replays it.
  EXPECT_EQ(total_misses, expected.size());
  EXPECT_EQ(total_hits, expected.size() * (kClients - 1));
  server.stop();
}

TEST(SweepServer, CacheFileRestartServesEverythingFromCache) {
  const std::string path =
      ::testing::TempDir() + "pops_net_restart_cache.json";
  std::remove(path.c_str());
  const SweepSpec spec = small_spec();

  std::vector<std::string> first_run;
  {
    SweepServerOptions opt;
    opt.cache_file = path;
    SweepServer server(opt);
    const service::CacheLoadReport loaded = server.start();
    EXPECT_EQ(loaded.entries_loaded, 0u);  // cold start
    SweepClient client("127.0.0.1", server.port());
    const SweepSummary summary = client.submit(
        spec, [&first_run](const Json&, const std::string& raw) {
          first_run.push_back(raw);
        });
    EXPECT_EQ(summary.cache_misses, 4u);
    client.shutdown_server();
    server.wait();
    server.stop();  // flushes the cache file
  }

  {
    SweepServerOptions opt;
    opt.cache_file = path;
    SweepServer server(opt);
    const service::CacheLoadReport loaded = server.start();
    EXPECT_EQ(loaded.entries_loaded, 4u);
    EXPECT_TRUE(loaded.problems.empty());
    SweepClient client("127.0.0.1", server.port());
    std::vector<std::string> warm_run;
    const SweepSummary summary = client.submit(
        spec, [&warm_run](const Json& point, const std::string& raw) {
          EXPECT_TRUE(
              point.find("report")->find("from_cache")->as_bool());
          warm_run.push_back(raw);
        });
    // ALL points served from the persisted cache, bit-identically
    // (modulo the from_cache flag itself).
    EXPECT_EQ(summary.cache_hits, 4u);
    EXPECT_EQ(summary.cache_misses, 0u);
    // Persisted replays restore the stored bytes verbatim (runtimes
    // included); only from_cache differs.
    ASSERT_EQ(warm_run.size(), first_run.size());
    for (std::size_t i = 0; i < warm_run.size(); ++i)
      EXPECT_EQ(scrub_from_cache(warm_run[i]), scrub_from_cache(first_run[i]))
          << i;
    server.stop();
  }
  std::remove(path.c_str());
}

TEST(SweepServer, InlineBenchSourcesResolveBeforeBuiltins) {
  SweepServer server;
  server.start();
  SweepClient client("127.0.0.1", server.port());

  // A tiny hand-written circuit shipped inline — no built-in fallback.
  const std::string bench =
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
  SweepSpec spec;
  spec.circuits = {"tiny"};
  spec.tc_ratios = {0.9};

  std::vector<Json> points;
  const SweepSummary summary = client.submit(
      spec,
      [&points](const Json& point, const std::string&) {
        points.push_back(point);
      },
      {{"tiny", bench}}, /*po_load_ff=*/9.0);
  EXPECT_EQ(summary.points, 1u);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].find("circuit")->as_string(), "tiny");
  server.stop();
}

TEST(SweepServer, ControlOpsAndErrorEvents) {
  SweepServer server;
  server.start();
  SweepClient client("127.0.0.1", server.port());

  EXPECT_EQ(net::event_name(client.ping()), "pong");

  const Json stats = client.server_stats();
  EXPECT_EQ(net::event_name(stats), "stats");
  ASSERT_NE(stats.find("cache"), nullptr);
  EXPECT_TRUE(stats.find("cache")->find("entries")->is_number());

  // An invalid spec (empty circuits) must come back as an error event
  // that throws client-side — and the connection stays usable.
  SweepSpec bad;
  bad.tc_ratios = {0.9};
  EXPECT_THROW(client.submit(bad), std::runtime_error);
  EXPECT_EQ(net::event_name(client.ping()), "pong");

  // Unknown circuit: make_benchmark throws server-side -> error event.
  SweepSpec unknown;
  unknown.circuits = {"no-such-circuit"};
  unknown.tc_ratios = {0.9};
  EXPECT_THROW(client.submit(unknown), std::runtime_error);
  EXPECT_EQ(net::event_name(client.ping()), "pong");
  EXPECT_GE(server.stats().errors, 2u);
  server.stop();
}

TEST(SweepServer, MalformedLinesAnswerWithErrors) {
  SweepServer server;
  server.start();
  net::TcpStream raw = net::TcpStream::connect("127.0.0.1", server.port());
  std::string line;

  raw.write_line("this is not json");
  ASSERT_TRUE(raw.read_line(line));
  EXPECT_EQ(net::event_name(Json::parse(line)), "error");

  raw.write_line(R"({"op": "frobnicate"})");
  ASSERT_TRUE(raw.read_line(line));
  const Json reply = Json::parse(line);
  EXPECT_EQ(net::event_name(reply), "error");
  EXPECT_NE(reply.find("message")->as_string().find("unknown op"),
            std::string::npos);

  raw.write_line(R"({"op": "sweep"})");  // missing spec
  ASSERT_TRUE(raw.read_line(line));
  EXPECT_EQ(net::event_name(Json::parse(line)), "error");
  server.stop();
}

TEST(SweepServer, ShutdownOpStopsWait) {
  SweepServer server;
  server.start();
  std::thread waiter([&server] { server.wait(); });
  SweepClient client("127.0.0.1", server.port());
  EXPECT_EQ(net::event_name(client.shutdown_server()), "bye");
  waiter.join();  // wait() released by the op
  server.stop();
}

TEST(TcpStream, LineFramingAndBounds) {
  net::TcpListener listener = net::TcpListener::bind("127.0.0.1", 0);
  net::TcpStream client =
      net::TcpStream::connect("127.0.0.1", listener.port());
  net::TcpStream peer{listener.accept()};
  ASSERT_TRUE(peer.valid());

  client.write_line("alpha");
  client.write_line("beta");
  std::string line;
  ASSERT_TRUE(peer.read_line(line));
  EXPECT_EQ(line, "alpha");
  ASSERT_TRUE(peer.read_line(line));
  EXPECT_EQ(line, "beta");

  // Oversized line -> bounded read throws instead of buffering forever.
  client.write_line(std::string(4096, 'x'));
  EXPECT_THROW(peer.read_line(line, 16), std::runtime_error);

  // EOF after half-close.
  net::TcpStream client2 =
      net::TcpStream::connect("127.0.0.1", listener.port());
  net::TcpStream peer2{listener.accept()};
  client2.write_line("last");
  client2.shutdown_write();
  ASSERT_TRUE(peer2.read_line(line));
  EXPECT_EQ(line, "last");
  EXPECT_FALSE(peer2.read_line(line));
  listener.close();
}

}  // namespace
