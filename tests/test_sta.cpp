// Tests for the static timing analysis: arrival propagation against
// hand-stitched chains, critical-path extraction, K-path enumeration and
// slack computation.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "pops/liberty/library.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/netlist/netlist.hpp"
#include "pops/process/technology.hpp"
#include "pops/timing/sta.hpp"

namespace {

using namespace pops::timing;
using namespace pops::netlist;
using pops::liberty::CellKind;
using pops::liberty::Library;
using pops::process::Technology;

class StaTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
  ClosedFormModel dm{lib};
};

TEST_F(StaTest, SingleInverterMatchesHandComputation) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(CellKind::Inv, "g", {a});
  nl.mark_output(g, 15.0);

  StaOptions opt;
  opt.pi_slew_ps = 40.0;
  const Sta sta(nl, dm, opt);
  const StaResult r = sta.run();

  const auto& inv = lib.cell(CellKind::Inv);
  const double load = 15.0 + nl.cpar_ff(g);
  for (Edge e : {Edge::Rise, Edge::Fall}) {
    const double expect = dm.delay_ps(inv, e, 40.0, nl.cin_ff(g), load);
    EXPECT_NEAR(r.arrival(g, e), expect, 1e-9) << to_string(e);
    EXPECT_NEAR(r.slew(g, e), dm.transition_ps(inv, e, nl.cin_ff(g), load),
                1e-9);
  }
}

TEST_F(StaTest, ChainArrivalAccumulates) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_gate(CellKind::Inv, "g1", {a});
  const NodeId g2 = nl.add_gate(CellKind::Inv, "g2", {g1});
  nl.mark_output(g2, 10.0);
  const Sta sta(nl, dm);
  const StaResult r = sta.run();

  // g2's rise is caused by g1's fall (inverting), so:
  const double d2 = dm.delay_ps(lib.cell(CellKind::Inv), Edge::Rise,
                                r.slew(g1, Edge::Fall), nl.cin_ff(g2),
                                nl.load_ff(g2) + nl.cpar_ff(g2));
  EXPECT_NEAR(r.arrival(g2, Edge::Rise), r.arrival(g1, Edge::Fall) + d2, 1e-9);
}

TEST_F(StaTest, CriticalPathTracksWorstBranch) {
  // Two parallel branches: a slow NOR3 branch and a fast INV branch
  // converging on a NAND2; the critical path must use the slow branch.
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId slow1 = nl.add_gate(CellKind::Nor3, "slow1", {a, b, c});
  const NodeId slow2 = nl.add_gate(CellKind::Nor3, "slow2", {slow1, b, c});
  const NodeId fast = nl.add_gate(CellKind::Inv, "fast", {a});
  const NodeId join = nl.add_gate(CellKind::Nand2, "join", {slow2, fast});
  nl.mark_output(join, 20.0);

  const Sta sta(nl, dm);
  const StaResult r = sta.run();
  const TimedPath path = sta.critical_path(r);

  ASSERT_GE(path.points.size(), 3u);
  EXPECT_EQ(path.points.back().node, join);
  // The path must route through the NOR3 chain, not the inverter.
  bool through_slow = false;
  for (const PathPoint& p : path.points)
    if (p.node == slow2) through_slow = true;
  EXPECT_TRUE(through_slow);
  EXPECT_NEAR(path.delay_ps, r.critical_delay_ps, 1e-9);
}

TEST_F(StaTest, KPathsAreSortedAndDistinct) {
  const Netlist nl = make_benchmark(lib, "c432");
  const Sta sta(nl, dm);
  const StaResult r = sta.run();
  const auto paths = sta.k_critical_paths(r, 12);
  ASSERT_GE(paths.size(), 2u);
  for (std::size_t i = 1; i < paths.size(); ++i)
    EXPECT_LE(paths[i].delay_ps, paths[i - 1].delay_ps + 1e-9);
  // The first enumerated path is the critical one.
  EXPECT_NEAR(paths.front().delay_ps, r.critical_delay_ps,
              1e-6 * r.critical_delay_ps);
  // Distinct point sequences.
  for (std::size_t i = 1; i < paths.size(); ++i) {
    const bool same = paths[i].points.size() == paths[0].points.size() &&
                      std::equal(paths[i].points.begin(), paths[i].points.end(),
                                 paths[0].points.begin());
    EXPECT_FALSE(same) << "path " << i << " duplicates path 0";
  }
}

TEST_F(StaTest, KPathsOnChainIsJustOnePerEdge) {
  const Netlist nl =
      make_chain(lib, {CellKind::Inv, CellKind::Inv, CellKind::Inv}, 8.0);
  const Sta sta(nl, dm);
  const auto paths = sta.k_critical_paths(sta.run(), 10);
  // One PI, two launch edges -> exactly two PI->PO paths.
  EXPECT_EQ(paths.size(), 2u);
}

TEST_F(StaTest, SlackSignMatchesConstraint) {
  const Netlist nl = make_benchmark(lib, "c17");
  const Sta sta(nl, dm);
  const StaResult r = sta.run();

  const auto slack_tight = sta.slacks(r, r.critical_delay_ps * 0.5);
  const auto slack_loose = sta.slacks(r, r.critical_delay_ps * 2.0);
  // Under the tight constraint at least the critical endpoint is negative.
  const auto po = static_cast<std::size_t>(r.critical_endpoint.node);
  EXPECT_LT(slack_tight[po], 0.0);
  EXPECT_GT(slack_loose[po], 0.0);
}

TEST_F(StaTest, ExactConstraintGivesZeroSlackOnCriticalPath) {
  const Netlist nl = make_benchmark(lib, "c17");
  const Sta sta(nl, dm);
  const StaResult r = sta.run();
  const auto slack = sta.slacks(r, r.critical_delay_ps);
  const auto po = static_cast<std::size_t>(r.critical_endpoint.node);
  EXPECT_NEAR(slack[po], 0.0, 1e-9);
  // And no slack anywhere is more negative than the critical one.
  for (double s : slack) EXPECT_GE(s, -1e-9);
}

TEST_F(StaTest, XorPropagatesBothInputEdges) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId x = nl.add_gate(CellKind::Xor2, "x", {a, b});
  nl.mark_output(x, 5.0);
  const Sta sta(nl, dm);
  const StaResult r = sta.run();
  // Both output edges are reachable.
  EXPECT_GT(r.arrival(x, Edge::Rise), 0.0);
  EXPECT_GT(r.arrival(x, Edge::Fall), 0.0);
}

TEST_F(StaTest, LargerDriveSpeedsUpCircuit) {
  Netlist nl = make_benchmark(lib, "c880");
  const Sta sta(nl, dm);
  const double before = sta.run().critical_delay_ps;
  for (NodeId g : nl.gates()) nl.set_drive(g, 3.0 * lib.wmin_um());
  const double after = sta.run().critical_delay_ps;
  EXPECT_LT(after, before);
}

TEST_F(StaTest, RequiredTimeAtPoIsTcForConstrainedEdges) {
  const Netlist nl = make_benchmark(lib, "c17");
  const Sta sta(nl, dm);
  const StaResult r = sta.run();
  const double tc = r.critical_delay_ps * 1.1;
  const auto required = sta.required_times(r, tc);
  for (NodeId po : nl.outputs()) {
    const auto i = static_cast<std::size_t>(po);
    for (std::size_t e = 0; e < 2; ++e) {
      // A PO's own requirement is tc; fanout-free POs get exactly that,
      // POs that also feed other gates can only be required earlier.
      EXPECT_LE(required[i][e], tc);
      if (nl.fanouts(po).empty()) {
        EXPECT_EQ(required[i][e], tc);
      }
    }
  }
}

TEST_F(StaTest, RequiredTimesShiftWithTc) {
  const Netlist nl = make_benchmark(lib, "c432");
  const Sta sta(nl, dm);
  const StaResult r = sta.run();
  const double tc = r.critical_delay_ps;
  const double shift = 37.5;
  const auto base = sta.required_times(r, tc);
  const auto moved = sta.required_times(r, tc + shift);
  // Required times are a min-propagation of (tc - downstream delay), so a
  // tc shift moves every finite entry by the same amount.
  ASSERT_EQ(moved.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i)
    for (std::size_t e = 0; e < 2; ++e) {
      if (!std::isfinite(base[i][e])) continue;
      EXPECT_NEAR(moved[i][e] - base[i][e], shift, 1e-9)
          << "node " << i << " edge " << e;
    }
}

TEST_F(StaTest, SlacksAreRequiredMinusArrivalWorstEdge) {
  const Netlist nl = make_benchmark(lib, "c432");
  const Sta sta(nl, dm);
  const StaResult r = sta.run();
  const double tc = r.critical_delay_ps * 0.9;
  const auto required = sta.required_times(r, tc);
  const auto slack = sta.slacks(r, tc);
  ASSERT_EQ(slack.size(), required.size());
  for (std::size_t i = 0; i < slack.size(); ++i) {
    double worst = std::numeric_limits<double>::infinity();
    for (std::size_t e = 0; e < 2; ++e)
      if (std::isfinite(r.arrival_ps[i][e]))
        worst = std::min(worst, required[i][e] - r.arrival_ps[i][e]);
    if (std::isfinite(worst)) {
      EXPECT_EQ(slack[i], worst) << "node " << i;
    }
  }
}

// ----- level-parallel sweeps ---------------------------------------------------

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// With level_parallel_min_nodes forced to 0 even the ISCAS circuits take
// the fanned-out sweep; every derived quantity must be bitwise-equal to
// the sequential engine at any worker count.
TEST_F(StaTest, LevelParallelSweepsBitIdenticalToSequential) {
  for (const char* name : {"c432", "c880"}) {
    SCOPED_TRACE(name);
    const Netlist nl = make_benchmark(lib, name);
    const Sta seq(nl, dm);
    const StaResult want = seq.run();
    const auto want_down = seq.downstream_delays(want);
    const double tc = want.critical_delay_ps;
    const auto want_req = seq.required_times(want, tc);
    const auto want_slack = seq.slacks(want, tc);
    const auto want_paths = seq.k_critical_paths(want, 8);

    for (const std::size_t workers : {2u, 4u}) {
      SCOPED_TRACE(workers);
      StaOptions opt;
      opt.level_parallel_workers = workers;
      opt.level_parallel_min_nodes = 0;  // force the parallel path
      const Sta par(nl, dm, opt);
      const StaResult got = par.run();

      ASSERT_EQ(got.arrival_ps.size(), want.arrival_ps.size());
      for (std::size_t i = 0; i < want.arrival_ps.size(); ++i)
        for (std::size_t e = 0; e < 2; ++e) {
          EXPECT_TRUE(same_bits(got.arrival_ps[i][e], want.arrival_ps[i][e]));
          EXPECT_TRUE(same_bits(got.slew_ps[i][e], want.slew_ps[i][e]));
          EXPECT_EQ(got.prev[i][e], want.prev[i][e]);
        }
      EXPECT_TRUE(same_bits(got.critical_delay_ps, want.critical_delay_ps));
      EXPECT_EQ(got.critical_endpoint, want.critical_endpoint);

      const auto got_down = par.downstream_delays(got);
      ASSERT_EQ(got_down.size(), want_down.size());
      for (std::size_t v = 0; v < want_down.size(); ++v)
        EXPECT_TRUE(same_bits(got_down[v], want_down[v])) << "vertex " << v;

      const auto got_req = par.required_times(got, tc);
      const auto got_slack = par.slacks(got, tc);
      for (std::size_t i = 0; i < want_req.size(); ++i)
        for (std::size_t e = 0; e < 2; ++e)
          EXPECT_TRUE(same_bits(got_req[i][e], want_req[i][e]));
      for (std::size_t i = 0; i < want_slack.size(); ++i)
        EXPECT_TRUE(same_bits(got_slack[i], want_slack[i]));

      const auto got_paths = par.k_critical_paths(got, 8);
      ASSERT_EQ(got_paths.size(), want_paths.size());
      for (std::size_t p = 0; p < want_paths.size(); ++p) {
        EXPECT_TRUE(same_bits(got_paths[p].delay_ps, want_paths[p].delay_ps));
        EXPECT_EQ(got_paths[p].points, want_paths[p].points);
      }
    }
  }
}

TEST_F(StaTest, ThrowsWithoutReachablePo) {
  Netlist nl(lib);
  nl.add_input("a");
  // No gates, no POs.
  const Sta sta(nl, dm);
  EXPECT_THROW(sta.run(), std::logic_error);
}

}  // namespace
