// The TableModel backend: characterization from the closed form, grid-point
// exactness, bilinear interpolation bounds, NLDM-style clamping, backend
// identity hashing, the numeric stage-coefficient fallback, and the golden
// STA parity suite (dense-grid table vs. closed form on real benchmarks).

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "pops/core/bounds.hpp"
#include "pops/liberty/library.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/process/technology.hpp"
#include "pops/timing/sta.hpp"
#include "pops/timing/table_model.hpp"

namespace {

using namespace pops::timing;
using pops::liberty::CellKind;
using pops::liberty::Library;
using pops::process::Technology;

/// A dense characterization grid: geometric slew ladder and a load ladder
/// fine enough that bilinear interpolation of the Miller-term curvature
/// stays well under a percent.
TableModelOptions dense_grid() {
  TableModelOptions opt;
  opt.slew_grid_ps.clear();
  for (double s = 0.5; s <= 1500.0; s *= 1.6) opt.slew_grid_ps.push_back(s);
  opt.load_grid.clear();
  for (double r = 0.05; r <= 300.0; r *= 1.3) opt.load_grid.push_back(r);
  return opt;
}

class TableModelTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
  ClosedFormModel cf{lib};
  TableModel tm{TableModel::characterize(cf, dense_grid())};
};

// ---------------------------------------------------------------------------
// Characterization & evaluation
// ---------------------------------------------------------------------------

TEST_F(TableModelTest, IdentityAndDowncast) {
  EXPECT_EQ(cf.name(), "closed-form");
  EXPECT_EQ(tm.name(), "table");
  EXPECT_EQ(cf.closed_form(), &cf);
  EXPECT_EQ(tm.closed_form(), nullptr);
  EXPECT_EQ(&tm.lib(), &lib);
  EXPECT_NE(tm.content_hash(), cf.content_hash());
}

TEST_F(TableModelTest, ExactAtGridPoints) {
  // Bilinear interpolation is exact at every grid point, so the table
  // reproduces the source bit-for-bit there — for every cell and edge.
  const TableModelOptions& opt = tm.options();
  for (const pops::liberty::Cell& cell : lib.cells()) {
    const double cin = cell.cin_ff(lib.tech(), lib.wmin_um());
    for (const Edge e : {Edge::Rise, Edge::Fall}) {
      for (const double s : opt.slew_grid_ps) {
        for (const double r : opt.load_grid) {
          EXPECT_DOUBLE_EQ(tm.delay_ps(cell, e, s, cin, r * cin),
                           cf.delay_ps(cell, e, s, cin, r * cin))
              << cell.name << " " << to_string(e) << " s=" << s << " r=" << r;
        }
        break;  // transition is slew-independent; one slew row suffices
      }
      for (const double r : opt.load_grid)
        EXPECT_DOUBLE_EQ(tm.transition_ps(cell, e, cin, r * cin),
                         cf.transition_ps(cell, e, cin, r * cin));
    }
  }
}

TEST_F(TableModelTest, ScalesWithCinLikeTheSource) {
  // The table is keyed on CL/CIN, so evaluating at a different drive than
  // the characterization point must still match the closed form exactly at
  // grid ratios (the closed form depends on the ratio only).
  const pops::liberty::Cell& nand2 = lib.cell(CellKind::Nand2);
  const double cin = 4.0 * nand2.cin_ff(lib.tech(), lib.wmin_um());
  for (const double r : tm.options().load_grid)
    EXPECT_NEAR(tm.delay_ps(nand2, Edge::Fall, 40.0, cin, r * cin),
                cf.delay_ps(nand2, Edge::Fall, 40.0, cin, r * cin), 1e-6);
}

TEST_F(TableModelTest, BilinearBetweenPointsWithinNeighborEnvelope) {
  const pops::liberty::Cell& inv = lib.cell(CellKind::Inv);
  const double cin = inv.cin_ff(lib.tech(), lib.wmin_um());
  // A point strictly inside a grid cell interpolates between the corner
  // values: it must lie inside their min/max envelope.
  const double s = 17.0, r = 3.1;
  const double v = tm.delay_ps(inv, Edge::Fall, s, cin, r * cin);
  // Envelope from the four surrounding characterized corners.
  double lo = 1e300, hi = -1e300;
  const auto& grid = tm.options();
  auto below = [](const std::vector<double>& axis, double x) {
    std::size_t i = 0;
    while (i + 2 < axis.size() && axis[i + 1] <= x) ++i;
    return i;
  };
  const std::size_t si = below(grid.slew_grid_ps, s);
  const std::size_t ri = below(grid.load_grid, r);
  for (const double ss : {grid.slew_grid_ps[si], grid.slew_grid_ps[si + 1]}) {
    for (const double rr : {grid.load_grid[ri], grid.load_grid[ri + 1]}) {
      const double c = cf.delay_ps(inv, Edge::Fall, ss, cin, rr * cin);
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
  }
  EXPECT_GE(v, lo);
  EXPECT_LE(v, hi);
}

TEST_F(TableModelTest, ClampsOutsideTheGrid) {
  // NLDM-style saturation: out-of-range slews and loads evaluate at the
  // grid envelope instead of extrapolating (or throwing).
  const pops::liberty::Cell& inv = lib.cell(CellKind::Inv);
  const double cin = inv.cin_ff(lib.tech(), lib.wmin_um());
  const auto& grid = tm.options();
  const double r_max = grid.load_grid.back();
  EXPECT_DOUBLE_EQ(tm.delay_ps(inv, Edge::Rise, 10.24, cin, 10.0 * r_max * cin),
                   tm.delay_ps(inv, Edge::Rise, 10.24, cin, r_max * cin));
  const double s_max = grid.slew_grid_ps.back();
  EXPECT_DOUBLE_EQ(tm.delay_ps(inv, Edge::Rise, 10.0 * s_max, cin, cin),
                   tm.delay_ps(inv, Edge::Rise, s_max, cin, cin));
}

TEST_F(TableModelTest, InvalidArgsThrow) {
  const pops::liberty::Cell& inv = lib.cell(CellKind::Inv);
  EXPECT_THROW(tm.transition_ps(inv, Edge::Rise, 0.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(tm.delay_ps(inv, Edge::Rise, -1.0, 5.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(tm.delay_ps(inv, Edge::Rise, 10.0, -5.0, 10.0),
               std::invalid_argument);
}

TEST(TableModelOptions, GridValidation) {
  TableModelOptions opt;
  EXPECT_TRUE(opt.problems().empty());
  opt.slew_grid_ps = {5.0};
  EXPECT_FALSE(opt.problems().empty());
  opt.slew_grid_ps = {5.0, 2.0};
  EXPECT_FALSE(opt.problems().empty());
  opt.slew_grid_ps = {-1.0, 2.0};
  EXPECT_FALSE(opt.problems().empty());
  opt = TableModelOptions{};
  opt.load_grid = {1.0, 1.0};
  EXPECT_FALSE(opt.problems().empty());
  ClosedFormModel cf{Library{Technology::cmos025()}};
  EXPECT_THROW(TableModel::characterize(cf, opt), std::invalid_argument);
}

TEST(TableModelIdentity, ContentHashAndSelectorTrackTheGrid) {
  Library lib{Technology::cmos025()};
  ClosedFormModel cf{lib};
  const TableModel a = TableModel::characterize(cf);
  const TableModel b = TableModel::characterize(cf);
  EXPECT_EQ(a.content_hash(), b.content_hash());
  EXPECT_EQ(a.selector(), b.selector());

  TableModelOptions coarse;
  coarse.slew_grid_ps = {10.0, 100.0};
  coarse.load_grid = {1.0, 10.0};
  const TableModel c = TableModel::characterize(cf, coarse);
  EXPECT_NE(a.content_hash(), c.content_hash());
  EXPECT_NE(a.selector(), c.selector());
  EXPECT_NE(c.selector(), cf.selector());
}

TEST(TableModelIdentity, CharacterizableFromAnyBackend) {
  // The builder samples through the DelayModel interface, so a table can
  // be re-characterized from another table; on the same grid the copy is
  // exact at grid points, hence content-identical.
  Library lib{Technology::cmos025()};
  ClosedFormModel cf{lib};
  const TableModel first = TableModel::characterize(cf, dense_grid());
  const TableModel second = TableModel::characterize(first, dense_grid());
  EXPECT_EQ(first.content_hash(), second.content_hash());
}

// ---------------------------------------------------------------------------
// Generic numeric fallbacks
// ---------------------------------------------------------------------------

TEST_F(TableModelTest, DefaultInputSlewMatchesClosedForm) {
  // FO1 sits on the ratio axis; the default grid includes 1.0 exactly only
  // in the default options, so allow the dense grid's interpolation error.
  EXPECT_NEAR(tm.default_input_slew_ps(), cf.default_input_slew_ps(),
              0.05 * cf.default_input_slew_ps());
}

TEST_F(TableModelTest, SlopeSensitivityApproximatesReducedVt) {
  // The closed form's slope coefficient is v_T/2 exactly; the table
  // measures it by finite differences over interpolated delays.
  for (const Edge e : {Edge::Rise, Edge::Fall}) {
    EXPECT_NEAR(tm.slope_sensitivity(e), 0.5 * cf.reduced_vt(e),
                0.02 * cf.reduced_vt(e))
        << to_string(e);
  }
}

TEST_F(TableModelTest, NumericStageCoefficientNearClosedForm) {
  const pops::liberty::Cell& nand2 = lib.cell(CellKind::Nand2);
  const double cin = 2.0 * nand2.cin_ff(lib.tech(), lib.wmin_um());
  for (const bool has_next : {true, false}) {
    // The table's coefficient is the base-class numeric derivative over
    // interpolated delays; against the same derivative on the closed form
    // only interpolation error remains.
    const double cf_numeric = cf.DelayModel::stage_coefficient(
        nand2, Edge::Fall, cin, 4.0 * cin, has_next, Edge::Rise);
    const double numeric = tm.stage_coefficient(
        nand2, Edge::Fall, cin, 4.0 * cin, has_next, Edge::Rise);
    EXPECT_NEAR(numeric, cf_numeric, 0.03 * cf_numeric)
        << "has_next=" << has_next;
    // Against the analytic A_i the gap is the frozen-Miller convention:
    // the derivative sees the (weak) load dependence of the Miller factor
    // that eq. (4) freezes between sweeps — same magnitude, ~15%.
    const double exact = cf.stage_coefficient(nand2, Edge::Fall, cin,
                                              4.0 * cin, has_next, Edge::Rise);
    EXPECT_NEAR(numeric, exact, 0.15 * exact) << "has_next=" << has_next;
    EXPECT_GT(numeric, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Golden parity: STA and path sizing under the table backend
// ---------------------------------------------------------------------------

class BackendParityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BackendParityTest, StaCriticalDelayWithinTolerance) {
  Library lib{Technology::cmos025()};
  ClosedFormModel cf{lib};
  const TableModel tm = TableModel::characterize(cf, dense_grid());

  const pops::netlist::Netlist nl =
      pops::netlist::make_benchmark(lib, GetParam());
  const StaResult ref = Sta(nl, cf).run();
  const StaResult got = Sta(nl, tm).run();

  // Stated tolerance of the dense-grid parity suite: 1% on the critical
  // delay (bilinear error on the Miller curvature, accumulated per stage).
  EXPECT_NEAR(got.critical_delay_ps, ref.critical_delay_ps,
              0.01 * ref.critical_delay_ps);
  EXPECT_EQ(got.critical_endpoint.node, ref.critical_endpoint.node);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, BackendParityTest,
                         ::testing::Values("c17", "c432", "c880", "c1355"));

TEST(BackendParity, PathBoundsUnderTableBackendTrackClosedForm) {
  // The link-equation solvers run on the numeric stage coefficients when
  // the backend is not closed-form; the resulting bounds must stay close.
  Library lib{Technology::cmos025()};
  ClosedFormModel cf{lib};
  const TableModel tm = TableModel::characterize(cf, dense_grid());

  std::vector<PathStage> stages(6);
  const CellKind mix[] = {CellKind::Inv, CellKind::Nand2, CellKind::Nor2,
                          CellKind::Nand3, CellKind::Inv, CellKind::Nand2};
  for (std::size_t i = 0; i < stages.size(); ++i) stages[i].kind = mix[i];
  const double cref = lib.cref_ff();
  const BoundedPath path(lib, stages, cref, 20.0 * cref, Edge::Rise,
                         cf.default_input_slew_ps());

  const pops::core::PathBounds ref = pops::core::compute_bounds(path, cf);
  const pops::core::PathBounds got = pops::core::compute_bounds(path, tm);
  EXPECT_NEAR(got.tmin_ps, ref.tmin_ps, 0.03 * ref.tmin_ps);
  EXPECT_NEAR(got.tmax_ps, ref.tmax_ps, 0.03 * ref.tmax_ps);
  EXPECT_LT(got.tmin_ps, got.tmax_ps);
}

}  // namespace
