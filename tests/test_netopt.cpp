// Tests for the netlist-level optimisation passes: inverter-pair
// cancellation, dead-logic sweeping and circuit-wide fanout shielding —
// all with functional-equivalence guarantees.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "pops/core/netopt.hpp"
#include "pops/core/restructure.hpp"
#include "pops/liberty/library.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/netlist/logic_sim.hpp"
#include "pops/obs/trace.hpp"
#include "pops/process/technology.hpp"
#include "pops/timing/sta.hpp"
#include "pops/timing/table_model.hpp"
#include "pops/util/rng.hpp"

namespace {

using namespace pops;
using namespace pops::netlist;
using liberty::CellKind;
using liberty::Library;
using process::Technology;
using util::Rng;

class NetoptTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
  timing::ClosedFormModel dm{lib};
};

TEST_F(NetoptTest, CancelSimpleInverterPair) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId i1 = nl.add_gate(CellKind::Inv, "i1", {a});
  const NodeId i2 = nl.add_gate(CellKind::Inv, "i2", {i1});
  const NodeId g = nl.add_gate(CellKind::Nand2, "g", {i2, a});
  nl.mark_output(g, 5.0);

  const std::size_t rewired = core::cancel_inverter_pairs(nl);
  EXPECT_EQ(rewired, 1u);
  // g now reads a directly.
  EXPECT_EQ(nl.node(g).fanins[0], a);
  // The bypassed pair is dead; sweeping removes it.
  const Netlist swept = core::sweep_dead(nl);
  EXPECT_EQ(swept.stats().n_gates, 1u);
  Rng rng(1);
  Netlist reference(lib);
  {
    const NodeId ra = reference.add_input("a");
    const NodeId rg = reference.add_gate(CellKind::Nand2, "g", {ra, ra});
    (void)rg;
    reference.mark_output(rg, 5.0);
  }
  EXPECT_TRUE(equivalent(reference, swept, rng));
}

TEST_F(NetoptTest, NeverBypassesPrimaryOutputGate) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId i1 = nl.add_gate(CellKind::Inv, "i1", {a});
  const NodeId i2 = nl.add_gate(CellKind::Inv, "i2", {i1});
  nl.mark_output(i2, 5.0);  // i2 IS the output: it must survive

  core::cancel_inverter_pairs(nl);
  const Netlist swept = core::sweep_dead(nl);
  EXPECT_NE(swept.find("i2"), kNoNode);
  EXPECT_TRUE(swept.node(swept.find("i2")).is_output);
  Rng rng(2);
  EXPECT_TRUE(equivalent(nl, swept, rng));
}

TEST_F(NetoptTest, CancellationAfterDeMorganRoundTrip) {
  // NOR -> NAND rewrite inserts inverters; a following NOR of the INV
  // output... build INV feeding the NOR so the rewrite creates an
  // INV(INV(x)) pair, then cancel and sweep: function intact.
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId inv_a = nl.add_gate(CellKind::Inv, "inv_a", {a});
  const NodeId nor = nl.add_gate(CellKind::Nor2, "nor", {inv_a, b});
  nl.mark_output(nor, 5.0);

  Netlist rewritten = nl;
  core::demorgan_nor_to_nand(rewritten, rewritten.find("nor"));
  const std::size_t rewired = core::cancel_inverter_pairs(rewritten);
  EXPECT_GE(rewired, 1u);  // the a-side pair collapses
  const Netlist swept = core::sweep_dead(rewritten);
  Rng rng(3);
  EXPECT_TRUE(equivalent(nl, swept, rng));
  // The pair really is gone: fewer gates than the raw rewrite.
  EXPECT_LT(swept.stats().n_gates, rewritten.stats().n_gates);
}

TEST_F(NetoptTest, SweepKeepsAllPis) {
  Netlist nl(lib);
  nl.add_input("used");
  nl.add_input("unused");
  const NodeId g = nl.add_gate(CellKind::Inv, "g", {nl.find("used")});
  nl.mark_output(g, 1.0);
  const Netlist swept = core::sweep_dead(nl);
  EXPECT_EQ(swept.inputs().size(), 2u);
}

TEST_F(NetoptTest, SweepPreservesSizesAndLoads) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(CellKind::Inv, "g", {a});
  nl.set_drive(g, 3.3);
  nl.set_wire_cap(g, 7.5);
  nl.mark_output(g, 11.0);
  const Netlist swept = core::sweep_dead(nl);
  const NodeId g2 = swept.find("g");
  EXPECT_DOUBLE_EQ(swept.node(g2).wn_um, 3.3);
  EXPECT_DOUBLE_EQ(swept.node(g2).wire_cap_ff, 7.5);
  EXPECT_DOUBLE_EQ(swept.node(g2).po_load_ff, 11.0);
}

TEST_F(NetoptTest, SweepIsIdempotentOnCleanCircuits) {
  const Netlist nl = make_c17(lib);
  const Netlist swept = core::sweep_dead(nl);
  EXPECT_EQ(swept.stats().n_gates, nl.stats().n_gates);
  Rng rng(4);
  EXPECT_TRUE(equivalent(nl, swept, rng));
}

TEST_F(NetoptTest, ShieldingImprovesOverloadedCircuit) {
  // A driver with one critical sink chain and many parasitic sinks.
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId hub = nl.add_gate(CellKind::Inv, "hub", {a});
  // Critical chain.
  NodeId prev = hub;
  for (int i = 0; i < 4; ++i)
    prev = nl.add_gate(CellKind::Inv, "chain" + std::to_string(i), {prev});
  nl.mark_output(prev, 20.0);
  // Parasitic fanout.
  for (int i = 0; i < 14; ++i) {
    const NodeId s = nl.add_gate(CellKind::Inv, "leaf" + std::to_string(i), {hub});
    nl.mark_output(s, 2.0);
  }
  nl.validate();
  Netlist original = nl;

  core::FlimitTable table;
  const core::ShieldReport report =
      core::shield_high_fanout_nets(nl, dm, table);
  EXPECT_GE(report.buffers_inserted, 1u);
  EXPECT_LT(report.delay_after_ps, report.delay_before_ps);
  EXPECT_GT(report.area_added_um, 0.0);
  nl.validate();
  Rng rng(5);
  EXPECT_TRUE(equivalent(original, nl, rng));
}

TEST_F(NetoptTest, ShieldingRespectsBudget) {
  Netlist nl = make_benchmark(lib, "c880");
  core::FlimitTable table;
  core::ShieldOptions opt;
  opt.max_buffers = 2;
  const core::ShieldReport report =
      core::shield_high_fanout_nets(nl, dm, table, opt);
  EXPECT_LE(report.buffers_inserted, 2u);
}

TEST_F(NetoptTest, ShieldingPreservesFunctionOnBenchmarks) {
  for (const char* name : {"c432", "fpd"}) {
    Netlist nl = make_benchmark(lib, name);
    Netlist original = nl;
    core::FlimitTable table;
    core::shield_high_fanout_nets(nl, dm, table);
    nl.validate();
    Rng rng(6);
    EXPECT_TRUE(equivalent(original, nl, rng, 128)) << name;
  }
}

// ----- regression: incremental shield == historical full-sweep shield ---------

// The historical shield (pre incremental-STA sharing) re-ran a cold
// Sta::run() for every candidate net and read slacks against the
// *current* critical delay. The rewritten pass keeps one IncrementalSta
// and queries slacks against the fixed pre-shield delay. The two must
// pick identical sinks on every net — slacks at different tc differ by a
// uniform additive constant, which an argmin ignores — so the edited
// netlists and reports must agree bit for bit.
core::ShieldReport reference_shield(Netlist& nl, const timing::DelayModel& dm,
                                    core::FlimitTable& table,
                                    const core::ShieldOptions& opt) {
  core::ShieldReport report;
  {
    const timing::Sta sta(nl, dm);
    report.delay_before_ps = sta.run().critical_delay_ps;
  }

  struct Candidate {
    NodeId net;
    double overload;
  };
  std::vector<Candidate> candidates;
  for (NodeId g : nl.gates()) {
    if (nl.node(g).kind == CellKind::Buf) continue;
    const auto& sinks = nl.fanouts(g);
    if (sinks.size() < 2) continue;
    double limit = std::numeric_limits<double>::infinity();
    for (NodeId s : sinks)
      limit = std::min(limit, table.get(dm, nl.node(g).kind, nl.node(s).kind));
    const double f = nl.load_ff(g) / nl.cin_ff(g);
    if (f > opt.margin * limit) candidates.push_back({g, f / limit});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.overload > b.overload;
            });

  const double area_before = nl.total_width_um();
  for (const Candidate& cand : candidates) {
    if (report.buffers_inserted >= opt.max_buffers) break;
    const NodeId g = cand.net;

    // The historical full sweep: cold run per candidate, slacks at the
    // current critical delay.
    const timing::Sta cold(nl, dm);
    const timing::StaResult res = cold.run();
    const std::vector<double> slack = cold.slacks(res, res.critical_delay_ps);

    const std::vector<NodeId> sinks = nl.fanouts(g);
    if (sinks.size() < 2) continue;
    NodeId keep = sinks.front();
    for (NodeId s : sinks)
      if (slack[static_cast<std::size_t>(s)] <
          slack[static_cast<std::size_t>(keep)])
        keep = s;

    std::vector<NodeId> moved;
    for (NodeId s : sinks)
      if (s != keep) moved.push_back(s);
    if (moved.empty()) continue;

    const NodeId buf = nl.insert_buffer(g, CellKind::Buf,
                                        nl.fresh_name(nl.node(g).name + "_sh"),
                                        moved);
    const liberty::Cell& bufc = nl.lib().cell(CellKind::Buf);
    const double load = nl.load_ff(buf);
    nl.set_drive(buf, bufc.wn_for_cin(nl.lib().tech(),
                                      load / opt.shield_fanout));
    ++report.buffers_inserted;
  }

  {
    const timing::Sta sta(nl, dm);
    report.delay_after_ps = sta.run().critical_delay_ps;
  }
  report.area_added_um = nl.total_width_um() - area_before;
  return report;
}

void expect_netlists_identical(const Netlist& a, const Netlist& b,
                               const char* when) {
  ASSERT_EQ(a.size(), b.size()) << when;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Node& na = a.node(static_cast<NodeId>(i));
    const Node& nb = b.node(static_cast<NodeId>(i));
    EXPECT_EQ(na.name, nb.name) << when << ": node " << i;
    EXPECT_EQ(na.kind, nb.kind) << when << ": node " << i;
    EXPECT_EQ(na.is_input, nb.is_input) << when << ": node " << i;
    EXPECT_EQ(na.is_output, nb.is_output) << when << ": node " << i;
    EXPECT_EQ(na.fanins, nb.fanins) << when << ": node " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(na.wn_um),
              std::bit_cast<std::uint64_t>(nb.wn_um))
        << when << ": node " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(na.po_load_ff),
              std::bit_cast<std::uint64_t>(nb.po_load_ff))
        << when << ": node " << i;
  }
}

TEST_F(NetoptTest, ShieldMatchesHistoricalFullSweepBitwise) {
  const timing::TableModel tm = timing::TableModel::characterize(dm);
  const timing::DelayModel* backends[] = {&dm, &tm};
  const char* backend_names[] = {"closed-form", "table"};
  for (const char* name : {"c17", "c432", "c880", "c1355"}) {
    for (std::size_t b = 0; b < 2; ++b) {
      SCOPED_TRACE(std::string(name) + " / " + backend_names[b]);
      const core::ShieldOptions opt;
      Netlist incr_nl = make_benchmark(lib, name);
      core::FlimitTable incr_table;
      const core::ShieldReport incr =
          core::shield_high_fanout_nets(incr_nl, *backends[b], incr_table, opt);

      Netlist ref_nl = make_benchmark(lib, name);
      core::FlimitTable ref_table;
      const core::ShieldReport ref =
          reference_shield(ref_nl, *backends[b], ref_table, opt);

      EXPECT_EQ(incr.buffers_inserted, ref.buffers_inserted);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(incr.delay_before_ps),
                std::bit_cast<std::uint64_t>(ref.delay_before_ps));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(incr.delay_after_ps),
                std::bit_cast<std::uint64_t>(ref.delay_after_ps));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(incr.area_added_um),
                std::bit_cast<std::uint64_t>(ref.area_added_um));
      expect_netlists_identical(incr_nl, ref_nl, name);
      if (HasFatalFailure()) return;
    }
  }
}

// The acceptance condition for the incremental-slack rewrite: processing
// several buffer candidates must NOT pay one full backward slack sweep
// per candidate. Two overloaded hubs sit off the critical path (a long
// chain dominates), so no insertion moves the critical delay and the
// engine's tc-keyed slack cache stays valid: exactly one sta/slack_full
// materialization for the whole pass, with later candidates served by
// incremental sta/slack_update maintenance.
TEST_F(NetoptTest, ShieldMaterializesSlacksOncePerUnmovedDelay) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  NodeId prev = a;
  for (int i = 0; i < 16; ++i)
    prev = nl.add_gate(CellKind::Inv, "chain" + std::to_string(i), {prev});
  nl.mark_output(prev, 120.0);  // the chain owns the critical path
  for (int h = 0; h < 2; ++h) {
    const NodeId hi = nl.add_input("h" + std::to_string(h));
    const NodeId hub =
        nl.add_gate(CellKind::Inv, "hub" + std::to_string(h), {hi});
    for (int i = 0; i < 14; ++i) {
      const NodeId leaf = nl.add_gate(
          CellKind::Inv, "leaf" + std::to_string(h) + "_" + std::to_string(i),
          {hub});
      nl.mark_output(leaf, 1.0);
    }
  }
  nl.validate();

  obs::TraceRecorder& rec = obs::TraceRecorder::global();
  rec.start();
  core::FlimitTable table;
  const core::ShieldReport report =
      core::shield_high_fanout_nets(nl, dm, table);
  rec.stop();

  ASSERT_EQ(report.buffers_inserted, 2u);
  // Both hubs are off-critical: unloading them leaves the chain's delay
  // bit-identical, so the slack cache never re-materializes.
  EXPECT_EQ(report.delay_after_ps, report.delay_before_ps);

  std::size_t slack_full = 0, slack_update = 0;
  for (const util::Json& r : rec.jsonl_records()) {
    const std::string& name = r.find("name")->as_string();
    if (name == "sta/slack_full") ++slack_full;
    if (name == "sta/slack_update") ++slack_update;
  }
  EXPECT_EQ(slack_full, 1u);     // one sweep, not one per candidate
  EXPECT_GE(slack_update, 1u);   // the second candidate was maintained
}

TEST_F(NetoptTest, QuietCircuitUnchanged) {
  // A chain has fanout 1 everywhere: no candidates.
  Netlist nl = make_chain(lib, {CellKind::Inv, CellKind::Inv, CellKind::Inv},
                          6.0, "quiet");
  core::FlimitTable table;
  const core::ShieldReport report =
      core::shield_high_fanout_nets(nl, dm, table);
  EXPECT_EQ(report.buffers_inserted, 0u);
  EXPECT_DOUBLE_EQ(report.delay_after_ps, report.delay_before_ps);
}

}  // namespace
