// Tests for the netlist-level optimisation passes: inverter-pair
// cancellation, dead-logic sweeping and circuit-wide fanout shielding —
// all with functional-equivalence guarantees.

#include <gtest/gtest.h>

#include "pops/core/netopt.hpp"
#include "pops/core/restructure.hpp"
#include "pops/liberty/library.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/netlist/logic_sim.hpp"
#include "pops/process/technology.hpp"
#include "pops/timing/sta.hpp"
#include "pops/util/rng.hpp"

namespace {

using namespace pops;
using namespace pops::netlist;
using liberty::CellKind;
using liberty::Library;
using process::Technology;
using util::Rng;

class NetoptTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
  timing::ClosedFormModel dm{lib};
};

TEST_F(NetoptTest, CancelSimpleInverterPair) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId i1 = nl.add_gate(CellKind::Inv, "i1", {a});
  const NodeId i2 = nl.add_gate(CellKind::Inv, "i2", {i1});
  const NodeId g = nl.add_gate(CellKind::Nand2, "g", {i2, a});
  nl.mark_output(g, 5.0);

  const std::size_t rewired = core::cancel_inverter_pairs(nl);
  EXPECT_EQ(rewired, 1u);
  // g now reads a directly.
  EXPECT_EQ(nl.node(g).fanins[0], a);
  // The bypassed pair is dead; sweeping removes it.
  const Netlist swept = core::sweep_dead(nl);
  EXPECT_EQ(swept.stats().n_gates, 1u);
  Rng rng(1);
  Netlist reference(lib);
  {
    const NodeId ra = reference.add_input("a");
    const NodeId rg = reference.add_gate(CellKind::Nand2, "g", {ra, ra});
    (void)rg;
    reference.mark_output(rg, 5.0);
  }
  EXPECT_TRUE(equivalent(reference, swept, rng));
}

TEST_F(NetoptTest, NeverBypassesPrimaryOutputGate) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId i1 = nl.add_gate(CellKind::Inv, "i1", {a});
  const NodeId i2 = nl.add_gate(CellKind::Inv, "i2", {i1});
  nl.mark_output(i2, 5.0);  // i2 IS the output: it must survive

  core::cancel_inverter_pairs(nl);
  const Netlist swept = core::sweep_dead(nl);
  EXPECT_NE(swept.find("i2"), kNoNode);
  EXPECT_TRUE(swept.node(swept.find("i2")).is_output);
  Rng rng(2);
  EXPECT_TRUE(equivalent(nl, swept, rng));
}

TEST_F(NetoptTest, CancellationAfterDeMorganRoundTrip) {
  // NOR -> NAND rewrite inserts inverters; a following NOR of the INV
  // output... build INV feeding the NOR so the rewrite creates an
  // INV(INV(x)) pair, then cancel and sweep: function intact.
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId inv_a = nl.add_gate(CellKind::Inv, "inv_a", {a});
  const NodeId nor = nl.add_gate(CellKind::Nor2, "nor", {inv_a, b});
  nl.mark_output(nor, 5.0);

  Netlist rewritten = nl;
  core::demorgan_nor_to_nand(rewritten, rewritten.find("nor"));
  const std::size_t rewired = core::cancel_inverter_pairs(rewritten);
  EXPECT_GE(rewired, 1u);  // the a-side pair collapses
  const Netlist swept = core::sweep_dead(rewritten);
  Rng rng(3);
  EXPECT_TRUE(equivalent(nl, swept, rng));
  // The pair really is gone: fewer gates than the raw rewrite.
  EXPECT_LT(swept.stats().n_gates, rewritten.stats().n_gates);
}

TEST_F(NetoptTest, SweepKeepsAllPis) {
  Netlist nl(lib);
  nl.add_input("used");
  nl.add_input("unused");
  const NodeId g = nl.add_gate(CellKind::Inv, "g", {nl.find("used")});
  nl.mark_output(g, 1.0);
  const Netlist swept = core::sweep_dead(nl);
  EXPECT_EQ(swept.inputs().size(), 2u);
}

TEST_F(NetoptTest, SweepPreservesSizesAndLoads) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(CellKind::Inv, "g", {a});
  nl.set_drive(g, 3.3);
  nl.set_wire_cap(g, 7.5);
  nl.mark_output(g, 11.0);
  const Netlist swept = core::sweep_dead(nl);
  const NodeId g2 = swept.find("g");
  EXPECT_DOUBLE_EQ(swept.node(g2).wn_um, 3.3);
  EXPECT_DOUBLE_EQ(swept.node(g2).wire_cap_ff, 7.5);
  EXPECT_DOUBLE_EQ(swept.node(g2).po_load_ff, 11.0);
}

TEST_F(NetoptTest, SweepIsIdempotentOnCleanCircuits) {
  const Netlist nl = make_c17(lib);
  const Netlist swept = core::sweep_dead(nl);
  EXPECT_EQ(swept.stats().n_gates, nl.stats().n_gates);
  Rng rng(4);
  EXPECT_TRUE(equivalent(nl, swept, rng));
}

TEST_F(NetoptTest, ShieldingImprovesOverloadedCircuit) {
  // A driver with one critical sink chain and many parasitic sinks.
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId hub = nl.add_gate(CellKind::Inv, "hub", {a});
  // Critical chain.
  NodeId prev = hub;
  for (int i = 0; i < 4; ++i)
    prev = nl.add_gate(CellKind::Inv, "chain" + std::to_string(i), {prev});
  nl.mark_output(prev, 20.0);
  // Parasitic fanout.
  for (int i = 0; i < 14; ++i) {
    const NodeId s = nl.add_gate(CellKind::Inv, "leaf" + std::to_string(i), {hub});
    nl.mark_output(s, 2.0);
  }
  nl.validate();
  Netlist original = nl;

  core::FlimitTable table;
  const core::ShieldReport report =
      core::shield_high_fanout_nets(nl, dm, table);
  EXPECT_GE(report.buffers_inserted, 1u);
  EXPECT_LT(report.delay_after_ps, report.delay_before_ps);
  EXPECT_GT(report.area_added_um, 0.0);
  nl.validate();
  Rng rng(5);
  EXPECT_TRUE(equivalent(original, nl, rng));
}

TEST_F(NetoptTest, ShieldingRespectsBudget) {
  Netlist nl = make_benchmark(lib, "c880");
  core::FlimitTable table;
  core::ShieldOptions opt;
  opt.max_buffers = 2;
  const core::ShieldReport report =
      core::shield_high_fanout_nets(nl, dm, table, opt);
  EXPECT_LE(report.buffers_inserted, 2u);
}

TEST_F(NetoptTest, ShieldingPreservesFunctionOnBenchmarks) {
  for (const char* name : {"c432", "fpd"}) {
    Netlist nl = make_benchmark(lib, name);
    Netlist original = nl;
    core::FlimitTable table;
    core::shield_high_fanout_nets(nl, dm, table);
    nl.validate();
    Rng rng(6);
    EXPECT_TRUE(equivalent(original, nl, rng, 128)) << name;
  }
}

TEST_F(NetoptTest, QuietCircuitUnchanged) {
  // A chain has fanout 1 everywhere: no candidates.
  Netlist nl = make_chain(lib, {CellKind::Inv, CellKind::Inv, CellKind::Inv},
                          6.0, "quiet");
  core::FlimitTable table;
  const core::ShieldReport report =
      core::shield_high_fanout_nets(nl, dm, table);
  EXPECT_EQ(report.buffers_inserted, 0u);
  EXPECT_DOUBLE_EQ(report.delay_after_ps, report.delay_before_ps);
}

}  // namespace
