// Integration tests: the complete POPS flow on benchmark circuits —
// parse/generate -> STA -> K critical paths -> bounded-path extraction ->
// Fig. 7 protocol -> write-back -> STA re-verification — plus end-to-end
// reproducibility and a model-vs-transistor-level cross-check of a sized
// path (the paper's "SPICE simulations of the corresponding path
// implementations").

#include <gtest/gtest.h>

#include "pops/baseline/amps.hpp"
#include "pops/core/power.hpp"
#include "pops/core/protocol.hpp"
#include "pops/liberty/library.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/netlist/logic_sim.hpp"
#include "pops/process/technology.hpp"
#include "pops/spice/measure.hpp"
#include "pops/timing/sta.hpp"
#include "pops/util/rng.hpp"

namespace {

using namespace pops;
using namespace pops::timing;
using liberty::CellKind;
using liberty::Library;
using netlist::Netlist;
using process::Technology;

class IntegrationTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
  ClosedFormModel dm{lib};
  core::FlimitTable table;
};

TEST_F(IntegrationTest, FullFlowOnBenchmark) {
  Netlist nl = netlist::make_benchmark(lib, "c499");
  const Sta sta(nl, dm);
  const double before = sta.run().critical_delay_ps;
  const double area_before = nl.total_width_um();

  core::CircuitOptions opt;
  opt.max_paths = 24;
  const core::CircuitResult res =
      core::optimize_circuit(nl, dm, table, 0.75 * before, opt);

  EXPECT_TRUE(res.met);
  EXPECT_LT(res.achieved_delay_ps, before);
  EXPECT_GT(res.area_um, area_before);  // speed costs area
  EXPECT_FALSE(res.per_path.empty());
  nl.validate();
}

TEST_F(IntegrationTest, ExtractOptimizeWriteBackRoundTrip) {
  // On a pure chain the write-back round trip is exact: no reconvergent
  // fanout means the frozen off-path loads stay valid.
  Netlist nl = netlist::make_chain(
      lib,
      {CellKind::Inv, CellKind::Nand2, CellKind::Inv, CellKind::Nor2,
       CellKind::Inv, CellKind::Nand3, CellKind::Inv},
      18.0 * lib.cref_ff(), "rt_chain");
  const Sta sta(nl, dm);
  const StaResult r = sta.run();
  const TimedPath tp = sta.critical_path(r);
  BoundedPath bp = BoundedPath::extract(nl, tp, dm.default_input_slew_ps());

  const core::PathBounds bounds = core::compute_bounds(bp, dm);
  const core::SizingResult sized =
      core::size_for_constraint(bp, dm, 1.3 * bounds.tmin_ps);
  ASSERT_TRUE(sized.feasible);
  sized.path.apply_sizes_to(nl);

  BoundedPath again = BoundedPath::extract(nl, tp, dm.default_input_slew_ps());
  EXPECT_NEAR(again.delay_ps(dm), sized.delay_ps, 1e-6 * sized.delay_ps);
}

TEST_F(IntegrationTest, WriteBackOnReconvergentCircuitNeedsIteration) {
  // On a real circuit the critical path can feed itself through
  // reconvergent fanout: sizing the path changes its own frozen off-path
  // loads, which is exactly why the paper iterates timing verification.
  // The re-extracted delay must stay in the neighbourhood, not explode.
  Netlist nl = netlist::make_benchmark(lib, "c880");
  const Sta sta(nl, dm);
  const TimedPath tp = sta.critical_path(sta.run());
  BoundedPath bp = BoundedPath::extract(nl, tp, dm.default_input_slew_ps());

  const core::PathBounds bounds = core::compute_bounds(bp, dm);
  const core::SizingResult sized =
      core::size_for_constraint(bp, dm, 1.3 * bounds.tmin_ps);
  ASSERT_TRUE(sized.feasible);
  sized.path.apply_sizes_to(nl);

  BoundedPath again = BoundedPath::extract(nl, tp, dm.default_input_slew_ps());
  EXPECT_NEAR(again.delay_ps(dm), sized.delay_ps, 0.35 * sized.delay_ps);
}

TEST_F(IntegrationTest, PopsBeatsAmpsAcrossBenchmarks) {
  // Fig. 2 + Fig. 4 shape on several circuits' critical paths.
  for (const char* name : {"Adder16", "c432", "c1355"}) {
    Netlist nl = netlist::make_benchmark(lib, name);
    const Sta sta(nl, dm);
    const TimedPath tp = sta.critical_path(sta.run());
    const BoundedPath bp =
        BoundedPath::extract(nl, tp, dm.default_input_slew_ps());

    const core::PathBounds bounds = core::compute_bounds(bp, dm);
    const baseline::AmpsResult amps_min = baseline::minimize_delay(bp, dm);
    EXPECT_GE(amps_min.delay_ps, bounds.tmin_ps * 0.999) << name;

    const double tc = 1.2 * bounds.tmin_ps;
    const core::SizingResult pops = core::size_for_constraint(bp, dm, tc);
    const baseline::AmpsResult amps = baseline::meet_constraint(bp, dm, tc);
    if (pops.feasible && amps.feasible) {
      EXPECT_LE(pops.area_um, amps.area_um * 1.001) << name;
    }
  }
}

TEST_F(IntegrationTest, SizedPathValidatesInTransistorSimulation) {
  // Build a chain, size it with the constant-sensitivity method, expand
  // the sized stages to transistors and compare the model's path delay to
  // the transient measurement — the reproduction of the paper's SPICE
  // validation loop. Chain cells are restricted to the spice-supported
  // kinds.
  const std::vector<CellKind> kinds = {CellKind::Inv, CellKind::Nand2,
                                       CellKind::Inv, CellKind::Nor2,
                                       CellKind::Inv};
  std::vector<PathStage> stages;
  for (CellKind k : kinds) {
    PathStage st;
    st.kind = k;
    stages.push_back(st);
  }
  BoundedPath path(lib, stages, 2.0 * lib.cref_ff(), 15.0 * lib.cref_ff(),
                   Edge::Rise, dm.default_input_slew_ps());
  const core::PathBounds bounds = core::compute_bounds(path, dm);
  const core::SizingResult sized =
      core::size_for_constraint(path, dm, 1.3 * bounds.tmin_ps);
  ASSERT_TRUE(sized.feasible);

  spice::ChainSpec spec;
  spec.kinds = kinds;
  for (std::size_t i = 0; i < sized.path.size(); ++i) {
    const auto& cell = sized.path.cell(i);
    spec.wn_um.push_back(cell.wn_for_cin(lib.tech(), sized.path.cin(i)));
  }
  spec.terminal_load_ff = 15.0 * lib.cref_ff();
  spec.input_ramp_ps = dm.default_input_slew_ps();
  const spice::ChainMeasurement m = spice::measure_chain(lib, spec);

  // One polarity, five stages: stay within 45% — the agreement band that
  // makes the closed-form metrics trustworthy.
  EXPECT_NEAR(m.path_delay_ps, sized.delay_ps, 0.45 * sized.delay_ps);
}

TEST_F(IntegrationTest, OptimizationPreservesLogicFunction) {
  // Sizing must never change the function (it only changes drives).
  Netlist nl = netlist::make_benchmark(lib, "c432");
  Netlist original = nl;
  const Sta sta(nl, dm);
  const double before = sta.run().critical_delay_ps;
  core::optimize_circuit(nl, dm, table, 0.8 * before, {});
  util::Rng rng(5);
  EXPECT_TRUE(netlist::equivalent(original, nl, rng, 128));
}

TEST_F(IntegrationTest, PowerTracksAreaAcrossConstraints) {
  // The paper's ΣW-as-power proxy: tighter constraints -> larger ΣW ->
  // more estimated power.
  Netlist relaxed = netlist::make_benchmark(lib, "c499");
  Netlist tight = netlist::make_benchmark(lib, "c499");
  const Sta sta(relaxed, dm);
  const double before = sta.run().critical_delay_ps;

  core::FlimitTable t1, t2;
  core::optimize_circuit(relaxed, dm, t1, 0.95 * before, {});
  core::optimize_circuit(tight, dm, t2, 0.70 * before, {});

  util::Rng rng1(9), rng2(9);
  const auto p_relaxed = core::estimate_power(relaxed, rng1, 100.0, 256);
  const auto p_tight = core::estimate_power(tight, rng2, 100.0, 256);
  EXPECT_GE(p_tight.area_um, p_relaxed.area_um);
  EXPECT_GE(p_tight.dynamic_uw, p_relaxed.dynamic_uw * 0.98);
}

TEST_F(IntegrationTest, DeterministicEndToEnd) {
  auto run_once = [&]() {
    Netlist nl = netlist::make_benchmark(lib, "c499");
    const Sta sta(nl, dm);
    const double before = sta.run().critical_delay_ps;
    core::FlimitTable t;
    const core::CircuitResult r =
        core::optimize_circuit(nl, dm, t, 0.8 * before, {});
    return std::make_pair(r.achieved_delay_ps, r.area_um);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

}  // namespace
