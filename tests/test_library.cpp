// Unit tests for pops::liberty — cell definitions, boolean functions,
// capacitance accessors and the eq. (3) symmetry factors.

#include <gtest/gtest.h>

#include <vector>

#include "pops/liberty/library.hpp"
#include "pops/process/technology.hpp"

namespace {

using namespace pops::liberty;
using pops::process::Technology;

class LibraryTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
};

TEST_F(LibraryTest, AllKindsPresentWithCanonicalNames) {
  for (CellKind k : all_cell_kinds()) {
    const Cell& c = lib.cell(k);
    EXPECT_EQ(c.kind, k);
    EXPECT_EQ(c.name, to_string(k));
    EXPECT_EQ(&lib.cell(c.name), &c);
  }
}

TEST_F(LibraryTest, KindFromStringRoundTrip) {
  for (CellKind k : all_cell_kinds())
    EXPECT_EQ(cell_kind_from_string(to_string(k)), k);
  EXPECT_THROW(cell_kind_from_string("nand17"), std::invalid_argument);
}

TEST_F(LibraryTest, CrefIsMinimumInverterInputCap) {
  const Cell& inv = lib.cell(CellKind::Inv);
  EXPECT_DOUBLE_EQ(lib.cref_ff(), inv.cin_ff(lib.tech(), lib.tech().wmin_um));
  EXPECT_GT(lib.cref_ff(), 1.0);  // a few fF at 0.25µm
  EXPECT_LT(lib.cref_ff(), 10.0);
}

TEST_F(LibraryTest, CinLinearInDrive) {
  const Cell& nand2 = lib.cell(CellKind::Nand2);
  const double c1 = nand2.cin_ff(lib.tech(), 1.0);
  const double c3 = nand2.cin_ff(lib.tech(), 3.0);
  EXPECT_NEAR(c3, 3.0 * c1, 1e-12);
}

TEST_F(LibraryTest, WnForCinInvertsCinFf) {
  for (CellKind k : all_cell_kinds()) {
    const Cell& c = lib.cell(k);
    const double wn = 2.34;
    EXPECT_NEAR(c.wn_for_cin(lib.tech(), c.cin_ff(lib.tech(), wn)), wn, 1e-12);
  }
}

TEST_F(LibraryTest, TotalWidthScalesWithFaninAndK) {
  const Cell& inv = lib.cell(CellKind::Inv);
  const Cell& nand2 = lib.cell(CellKind::Nand2);
  EXPECT_DOUBLE_EQ(inv.total_width_um(1.0), 1.0 + inv.k_ratio);
  EXPECT_DOUBLE_EQ(nand2.total_width_um(1.0), 2.0 * (1.0 + nand2.k_ratio));
}

TEST_F(LibraryTest, LogicalWeightsGrowWithStackDepth) {
  EXPECT_LT(lib.cell(CellKind::Nand2).dw_hl, lib.cell(CellKind::Nand3).dw_hl);
  EXPECT_LT(lib.cell(CellKind::Nand3).dw_hl, lib.cell(CellKind::Nand4).dw_hl);
  EXPECT_LT(lib.cell(CellKind::Nor2).dw_lh, lib.cell(CellKind::Nor3).dw_lh);
  EXPECT_LT(lib.cell(CellKind::Nor3).dw_lh, lib.cell(CellKind::Nor4).dw_lh);
}

TEST_F(LibraryTest, SymmetryFactorsReflectSerialArrays) {
  // eq. (3): S_HL = (1+k) DW_HL ; S_LH = R (1+k)/k DW_LH.
  const Cell& inv = lib.cell(CellKind::Inv);
  EXPECT_NEAR(lib.s_hl(inv), (1.0 + inv.k_ratio) * 1.0, 1e-12);
  EXPECT_NEAR(lib.s_lh(inv),
              lib.tech().r_ratio * (1.0 + inv.k_ratio) / inv.k_ratio, 1e-12);
  // The NOR3 rising edge is the weakest drive of the basic library.
  const double s_nor3 = lib.s_lh(lib.cell(CellKind::Nor3));
  for (CellKind k : {CellKind::Inv, CellKind::Nand2, CellKind::Nand3,
                     CellKind::Nor2}) {
    EXPECT_GT(s_nor3, lib.s_lh(lib.cell(k)));
    EXPECT_GT(s_nor3, lib.s_hl(lib.cell(k)));
  }
}

TEST_F(LibraryTest, ParasiticGrowsWithStackFactor) {
  const auto& t = lib.tech();
  EXPECT_GT(lib.cell(CellKind::Nand4).cpar_ff(t, 1.0) /
                lib.cell(CellKind::Nand4).cin_ff(t, 1.0),
            lib.cell(CellKind::Nand2).cpar_ff(t, 1.0) /
                lib.cell(CellKind::Nand2).cin_ff(t, 1.0) - 1e-12);
}

// ---- boolean functions, exhaustively per kind -------------------------------

bool ref_eval(CellKind k, const std::vector<bool>& in) {
  auto all = [&] {
    for (bool b : in)
      if (!b) return false;
    return true;
  };
  auto any = [&] {
    for (bool b : in)
      if (b) return true;
    return false;
  };
  switch (k) {
    case CellKind::Inv: return !in[0];
    case CellKind::Buf: return in[0];
    case CellKind::Nand2:
    case CellKind::Nand3:
    case CellKind::Nand4: return !all();
    case CellKind::Nor2:
    case CellKind::Nor3:
    case CellKind::Nor4: return !any();
    case CellKind::Aoi21: return !((in[0] && in[1]) || in[2]);
    case CellKind::Oai21: return !((in[0] || in[1]) && in[2]);
    case CellKind::Xor2: return in[0] != in[1];
    case CellKind::Xnor2: return in[0] == in[1];
  }
  return false;
}

class CellEvalTest : public ::testing::TestWithParam<CellKind> {};

TEST_P(CellEvalTest, MatchesTruthTable) {
  const Library lib(Technology::cmos025());
  const Cell& c = lib.cell(GetParam());
  const int n = c.fanin;
  for (unsigned pattern = 0; pattern < (1u << n); ++pattern) {
    std::vector<bool> in(static_cast<std::size_t>(n));
    bool raw[4];
    for (int i = 0; i < n; ++i) {
      in[static_cast<std::size_t>(i)] = (pattern >> i) & 1u;
      raw[i] = in[static_cast<std::size_t>(i)];
    }
    EXPECT_EQ(c.eval({raw, static_cast<std::size_t>(n)}),
              ref_eval(GetParam(), in))
        << c.name << " pattern " << pattern;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCells, CellEvalTest,
                         ::testing::ValuesIn(all_cell_kinds().begin(),
                                             all_cell_kinds().end()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_F(LibraryTest, EvalArityMismatchThrows) {
  const Cell& nand2 = lib.cell(CellKind::Nand2);
  bool one[1] = {true};
  EXPECT_THROW(nand2.eval({one, 1}), std::invalid_argument);
}

TEST_F(LibraryTest, InvertingFlagsConsistent) {
  EXPECT_TRUE(lib.cell(CellKind::Inv).inverting);
  EXPECT_FALSE(lib.cell(CellKind::Buf).inverting);
  EXPECT_TRUE(lib.cell(CellKind::Nand2).inverting);
  EXPECT_TRUE(lib.cell(CellKind::Nor4).inverting);
  EXPECT_FALSE(lib.cell(CellKind::Xor2).inverting);
  EXPECT_TRUE(lib.cell(CellKind::Xnor2).inverting);
}

}  // namespace
