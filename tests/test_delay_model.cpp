// Unit tests for the eq. (1-3) delay model: monotonicity, the coupling and
// slope terms, symmetry factors and the link-equation stage coefficient.

#include <gtest/gtest.h>

#include "pops/liberty/library.hpp"
#include "pops/process/technology.hpp"
#include "pops/timing/delay_model.hpp"

namespace {

using namespace pops::timing;
using pops::liberty::Cell;
using pops::liberty::CellKind;
using pops::liberty::Library;
using pops::process::Technology;

class DelayModelTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
  ClosedFormModel dm{lib};
};

TEST_F(DelayModelTest, TransitionScalesLinearlyWithLoad) {
  const Cell& inv = lib.cell(CellKind::Inv);
  const double t1 = dm.transition_ps(inv, Edge::Fall, 10.0, 20.0);
  const double t2 = dm.transition_ps(inv, Edge::Fall, 10.0, 40.0);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-12);
}

TEST_F(DelayModelTest, TransitionInverseInDrive) {
  const Cell& inv = lib.cell(CellKind::Inv);
  const double t1 = dm.transition_ps(inv, Edge::Rise, 10.0, 30.0);
  const double t2 = dm.transition_ps(inv, Edge::Rise, 20.0, 30.0);
  EXPECT_NEAR(t2, 0.5 * t1, 1e-12);
}

TEST_F(DelayModelTest, Eq2MatchesHandComputation) {
  // tau_outHL = S_HL * tau * CL/CIN with S_HL = (1+k)*DW_HL.
  const Cell& inv = lib.cell(CellKind::Inv);
  const double expect =
      (1.0 + inv.k_ratio) * 1.0 * lib.tech().tau_ps * (30.0 / 10.0);
  EXPECT_NEAR(dm.transition_ps(inv, Edge::Fall, 10.0, 30.0), expect, 1e-9);
}

TEST_F(DelayModelTest, SlowEdgeFollowsWeakNetwork) {
  // INV and NOR: the PMOS network is the weak one (k < R, plus the NOR's
  // serial P stack) -> rising is slower. NAND: the serial NMOS stack
  // dominates -> falling is slower.
  for (CellKind k : {CellKind::Inv, CellKind::Nor2, CellKind::Nor3}) {
    const Cell& c = lib.cell(k);
    EXPECT_GT(dm.transition_ps(c, Edge::Rise, 10.0, 30.0),
              dm.transition_ps(c, Edge::Fall, 10.0, 30.0))
        << c.name;
  }
  for (CellKind k : {CellKind::Nand2, CellKind::Nand3}) {
    const Cell& c = lib.cell(k);
    EXPECT_GT(dm.transition_ps(c, Edge::Fall, 10.0, 30.0),
              dm.transition_ps(c, Edge::Rise, 10.0, 30.0))
        << c.name;
  }
}

TEST_F(DelayModelTest, InvalidArgsThrow) {
  const Cell& inv = lib.cell(CellKind::Inv);
  EXPECT_THROW(dm.transition_ps(inv, Edge::Fall, 0.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(dm.delay_ps(inv, Edge::Fall, -1.0, 10.0, 10.0),
               std::invalid_argument);
}

TEST_F(DelayModelTest, CouplingCapMatchesDeviceSplit) {
  const Cell& inv = lib.cell(CellKind::Inv);  // k = 2
  const double cin = 12.0;
  // Falling output = rising input = coupling through the P gate cap.
  EXPECT_NEAR(dm.coupling_ff(inv, Edge::Fall, cin),
              0.5 * (inv.k_ratio / (1.0 + inv.k_ratio)) * cin, 1e-12);
  EXPECT_NEAR(dm.coupling_ff(inv, Edge::Rise, cin),
              0.5 * (1.0 / (1.0 + inv.k_ratio)) * cin, 1e-12);
}

TEST_F(DelayModelTest, MillerFactorBounded) {
  const Cell& inv = lib.cell(CellKind::Inv);
  // (1 + 2CM/(CM+CL)) lies in (1, 3); -> 1 as CL -> inf, -> 3 as CL -> 0.
  EXPECT_NEAR(dm.miller_factor(inv, Edge::Fall, 10.0, 1e9), 1.0, 1e-6);
  EXPECT_GT(dm.miller_factor(inv, Edge::Fall, 10.0, 0.01), 2.5);
  const double m = dm.miller_factor(inv, Edge::Fall, 10.0, 20.0);
  EXPECT_GT(m, 1.0);
  EXPECT_LT(m, 3.0);
}

TEST_F(DelayModelTest, DelayIncludesSlopeTerm) {
  // eq. (1): the input-slope contribution is exactly v_T/2 * tau_in.
  const Cell& inv = lib.cell(CellKind::Inv);
  const double d0 = dm.delay_ps(inv, Edge::Fall, 0.0, 10.0, 30.0);
  const double d1 = dm.delay_ps(inv, Edge::Fall, 100.0, 10.0, 30.0);
  EXPECT_NEAR(d1 - d0, 0.5 * lib.tech().vtn_reduced() * 100.0, 1e-9);
}

TEST_F(DelayModelTest, SlopeTermUsesEdgeSpecificThreshold) {
  EXPECT_DOUBLE_EQ(dm.reduced_vt(Edge::Fall), lib.tech().vtn_reduced());
  EXPECT_DOUBLE_EQ(dm.reduced_vt(Edge::Rise), lib.tech().vtp_reduced());
}

TEST_F(DelayModelTest, DelayMonotoneInLoad) {
  const Cell& nand2 = lib.cell(CellKind::Nand2);
  double prev = 0.0;
  for (double cl = 5.0; cl < 200.0; cl += 5.0) {
    const double d = dm.delay_ps(nand2, Edge::Fall, 40.0, 8.0, cl);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST_F(DelayModelTest, StageCoefficientPositiveAndOrdered) {
  // A_i = tau * S * (miller + vt_next)/2 — positive, and larger for the
  // weaker (higher logical weight) cells at identical conditions.
  const double a_inv = dm.stage_coefficient(lib.cell(CellKind::Inv),
                                            Edge::Rise, 10.0, 30.0, true,
                                            Edge::Fall);
  const double a_nor3 = dm.stage_coefficient(lib.cell(CellKind::Nor3),
                                             Edge::Rise, 10.0, 30.0, true,
                                             Edge::Fall);
  EXPECT_GT(a_inv, 0.0);
  EXPECT_GT(a_nor3, a_inv);
}

TEST_F(DelayModelTest, StageCoefficientLastStageDropsSlopeTerm) {
  const Cell& inv = lib.cell(CellKind::Inv);
  const double with_next =
      dm.stage_coefficient(inv, Edge::Rise, 10.0, 30.0, true, Edge::Fall);
  const double last =
      dm.stage_coefficient(inv, Edge::Rise, 10.0, 30.0, false, Edge::Fall);
  EXPECT_GT(with_next, last);
  const double vt = lib.tech().vtn_reduced();
  EXPECT_NEAR(with_next - last,
              lib.tech().tau_ps * dm.symmetry_factor(inv, Edge::Rise) * 0.5 * vt,
              1e-9);
}

TEST_F(DelayModelTest, DefaultInputSlewIsFo1Inverter) {
  const Cell& inv = lib.cell(CellKind::Inv);
  const double expect =
      0.5 * (lib.s_hl(inv) + lib.s_lh(inv)) * lib.tech().tau_ps;
  EXPECT_NEAR(dm.default_input_slew_ps(), expect, 1e-12);
  EXPECT_GT(dm.default_input_slew_ps(), 0.0);
}

TEST(EdgeHelpers, FlipAndNames) {
  EXPECT_EQ(flip(Edge::Rise), Edge::Fall);
  EXPECT_EQ(flip(Edge::Fall), Edge::Rise);
  EXPECT_STREQ(to_string(Edge::Rise), "rise");
  EXPECT_STREQ(to_string(Edge::Fall), "fall");
}

// Property sweep: the FO4 delay of every basic cell sits in a plausible
// 0.25µm window (tens of ps up to ~0.5 ns for the weak NOR edges).
class Fo4Test : public ::testing::TestWithParam<CellKind> {};

TEST_P(Fo4Test, Fo4DelayPlausible) {
  const Library lib(Technology::cmos025());
  const ClosedFormModel dm(lib);
  const Cell& c = lib.cell(GetParam());
  const double cin = c.cin_ff(lib.tech(), 2.0);
  for (Edge e : {Edge::Rise, Edge::Fall}) {
    const double d =
        dm.delay_ps(c, e, dm.default_input_slew_ps(), cin, 4.0 * cin);
    EXPECT_GT(d, 20.0) << c.name;
    EXPECT_LT(d, 600.0) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(BasicCells, Fo4Test,
                         ::testing::Values(CellKind::Inv, CellKind::Nand2,
                                           CellKind::Nand3, CellKind::Nand4,
                                           CellKind::Nor2, CellKind::Nor3,
                                           CellKind::Nor4),
                         [](const auto& info) {
                           return std::string(pops::liberty::to_string(info.param));
                         });

}  // namespace
