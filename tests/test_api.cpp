// The unified pipeline API: config validation, pass ordering, report
// aggregation, legacy-shim equivalence, and run_many determinism across
// thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "pops/api/api.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/obs/metrics.hpp"
#include "pops/timing/sta.hpp"
#include "pops/timing/table_model.hpp"
#include "pops/util/json.hpp"

namespace {

using namespace pops;
using api::OptContext;
using api::Optimizer;
using api::OptimizerConfig;
using api::PassPipeline;
using api::PipelineReport;
using netlist::Netlist;

// ---------------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------------

TEST(OptimizerConfig, DefaultIsValid) {
  EXPECT_TRUE(OptimizerConfig{}.validate().empty());
  EXPECT_NO_THROW(OptimizerConfig{}.ensure_valid());
}

TEST(OptimizerConfig, InvertedDomainRatiosRejected) {
  OptimizerConfig cfg;
  cfg.with_domain_ratios(2.5, 1.2);  // hard >= weak: Medium domain empty
  const auto problems = cfg.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_THROW(cfg.ensure_valid(), api::ConfigError);
}

TEST(OptimizerConfig, SubUnityHardRatioRejected) {
  OptimizerConfig cfg;
  cfg.hard_ratio = 0.5;
  EXPECT_THROW(cfg.ensure_valid(), api::ConfigError);
}

TEST(OptimizerConfig, BadMarginAndPathsRejected) {
  OptimizerConfig cfg;
  cfg.tc_margin = 0.0;
  cfg.max_paths = 0;
  cfg.max_rounds = -1;
  const auto problems = cfg.validate();
  EXPECT_GE(problems.size(), 3u);  // every problem reported, not just one
}

TEST(OptimizerConfig, ErrorListsEveryProblem) {
  OptimizerConfig cfg;
  cfg.tc_margin = 2.0;
  cfg.shield_fanout = 0.5;
  try {
    cfg.ensure_valid();
    FAIL() << "expected ConfigError";
  } catch (const api::ConfigError& e) {
    EXPECT_EQ(e.problems().size(), 2u);
    EXPECT_NE(std::string(e.what()).find("tc_margin"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("shield_fanout"), std::string::npos);
  }
}

TEST(OptimizerConfig, AllPassesDisabledRejected) {
  OptimizerConfig cfg;
  cfg.with_shielding(false).with_cleanup(false).with_protocol(false);
  EXPECT_THROW(cfg.ensure_valid(), api::ConfigError);
}

TEST(OptimizerConfig, OptimizerConstructionValidates) {
  OptContext ctx;
  OptimizerConfig cfg;
  cfg.weak_ratio = 1.0;  // < hard_ratio
  EXPECT_THROW(Optimizer(ctx, cfg), api::ConfigError);
}

TEST(OptimizerConfig, LegacyRoundTripPreservesKnobs) {
  core::CircuitOptions legacy;
  legacy.max_paths = 7;
  legacy.max_rounds = 3;
  legacy.tc_margin = 0.9;
  legacy.protocol.hard_ratio = 1.4;
  legacy.protocol.weak_ratio = 2.0;
  const OptimizerConfig cfg = OptimizerConfig::from_legacy(legacy);
  const core::CircuitOptions back = cfg.circuit_options();
  EXPECT_EQ(back.max_paths, legacy.max_paths);
  EXPECT_EQ(back.max_rounds, legacy.max_rounds);
  EXPECT_DOUBLE_EQ(back.tc_margin, legacy.tc_margin);
  EXPECT_DOUBLE_EQ(back.protocol.hard_ratio, legacy.protocol.hard_ratio);
  EXPECT_DOUBLE_EQ(back.protocol.weak_ratio, legacy.protocol.weak_ratio);
}

// Legacy structs now diagnose instead of silently misclassifying.
TEST(LegacyOptions, ProtocolOptionsValidate) {
  core::ProtocolOptions opt;
  opt.hard_ratio = 3.0;  // >= weak_ratio (2.5)
  EXPECT_THROW(core::classify_constraint(100.0, 50.0, opt),
               std::invalid_argument);
}

TEST(LegacyOptions, CircuitOptionsValidate) {
  OptContext ctx;
  Netlist nl = netlist::make_benchmark(ctx.lib(), "c17");
  core::FlimitTable table;
  core::CircuitOptions opt;
  opt.tc_margin = 1.5;
  EXPECT_THROW(core::optimize_circuit(nl, ctx.dm(), table, 100.0, opt),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

TEST(OptContextTest, OwnsConsistentState) {
  OptContext ctx(process::Technology::cmos018());
  EXPECT_EQ(ctx.tech().name, "generic-cmos018");
  EXPECT_EQ(&ctx.dm().lib(), &ctx.lib());
  EXPECT_GT(ctx.lib().cref_ff(), 0.0);
}

TEST(OptContextTest, WarmFlimitsCoversAllPairs) {
  OptContext ctx;
  ctx.warm_flimits();
  // A warmed table returns without recomputation; spot-check a few pairs.
  const double f = ctx.flimits().get(ctx.dm(), liberty::CellKind::Inv,
                                     liberty::CellKind::Inv);
  EXPECT_GT(f, 1.0);
}

TEST(OptContextTest, RngStreamsAreDeterministicAndDistinct) {
  OptContext ctx;
  util::Rng a1 = ctx.make_rng(0), a2 = ctx.make_rng(0), b = ctx.make_rng(1);
  EXPECT_EQ(a1(), a2());
  util::Rng a3 = ctx.make_rng(0);
  EXPECT_NE(a3(), b());
}

// ---------------------------------------------------------------------------
// Pipeline structure
// ---------------------------------------------------------------------------

TEST(PassPipelineTest, StandardOrderIsShieldCancelSweepProtocol) {
  const PassPipeline p = PassPipeline::standard(OptimizerConfig{});
  const std::vector<std::string> expected = {"shield", "cancel-inverters",
                                             "sweep-dead", "protocol"};
  EXPECT_EQ(p.pass_names(), expected);
}

TEST(PassPipelineTest, ConfigFlagsGatePasses) {
  OptimizerConfig cfg;
  cfg.with_shielding(false).with_cleanup(false);
  const PassPipeline p = PassPipeline::standard(cfg);
  EXPECT_EQ(p.pass_names(), std::vector<std::string>{"protocol"});
}

TEST(PassPipelineTest, ReportHasOneEntryPerPass) {
  OptContext ctx;
  Netlist nl = netlist::make_benchmark(ctx.lib(), "c432");
  Optimizer opt(ctx);
  const PipelineReport r = opt.run_relative(nl, 0.85);
  ASSERT_EQ(r.passes.size(), 4u);
  EXPECT_EQ(r.passes[0].pass_name, "shield");
  EXPECT_EQ(r.passes[3].pass_name, "protocol");
  EXPECT_TRUE(r.passes[3].circuit.has_value());
}

TEST(PassPipelineTest, AggregatesMatchPerPassSums) {
  OptContext ctx;
  Netlist nl = netlist::make_benchmark(ctx.lib(), "c880");
  Optimizer opt(ctx);
  // Tight enough that the protocol pass still has work after shielding.
  const PipelineReport r = opt.run_relative(nl, 0.6);

  std::size_t buffers = 0, rewired = 0, removed = 0, paths = 0;
  double ms = 0.0;
  for (const api::PassReport& p : r.passes) {
    buffers += p.buffers_inserted;
    rewired += p.sinks_rewired;
    removed += p.gates_removed;
    paths += p.paths_optimized;
    ms += p.runtime_ms;
  }
  EXPECT_EQ(r.total_buffers_inserted(), buffers);
  EXPECT_EQ(r.total_sinks_rewired(), rewired);
  EXPECT_EQ(r.total_gates_removed(), removed);
  EXPECT_EQ(r.total_paths_optimized(), paths);
  EXPECT_DOUBLE_EQ(r.total_runtime_ms(), ms);

  // The report envelope is consistent with the pass chain.
  EXPECT_DOUBLE_EQ(r.passes.front().delay_before_ps, r.initial_delay_ps);
  EXPECT_DOUBLE_EQ(r.passes.back().delay_after_ps, r.final_delay_ps);
  EXPECT_GT(r.total_paths_optimized(), 0u);
}

TEST(PassPipelineTest, CustomPipelineRuns) {
  OptContext ctx;
  Netlist nl = netlist::make_benchmark(ctx.lib(), "c432");
  Optimizer opt(ctx);
  PassPipeline custom;
  custom.emplace<api::CancelInvertersPass>()
      .emplace<api::SweepDeadPass>();
  opt.set_pipeline(std::move(custom));
  const PipelineReport r = opt.run(nl, 1e6);
  EXPECT_EQ(r.passes.size(), 2u);
  EXPECT_TRUE(r.met);  // effectively unconstrained
}

TEST(PassPipelineTest, RejectsNonPositiveTc) {
  OptContext ctx;
  Netlist nl = netlist::make_benchmark(ctx.lib(), "c17");
  Optimizer opt(ctx);
  EXPECT_THROW(opt.run(nl, 0.0), std::invalid_argument);
  EXPECT_THROW(opt.run(nl, -5.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Shim equivalence: the unified API drives the same kernels as the legacy
// free functions, so protocol-only results must be bit-identical.
// ---------------------------------------------------------------------------

TEST(ShimEquivalence, ProtocolOnlyPipelineMatchesOptimizeCircuit) {
  OptContext ctx_api;
  Netlist nl_api = netlist::make_benchmark(ctx_api.lib(), "c499");
  Netlist nl_legacy = netlist::make_benchmark(ctx_api.lib(), "c499");

  const double initial =
      timing::Sta(nl_api, ctx_api.dm()).run().critical_delay_ps;
  const double tc = 0.8 * initial;

  OptimizerConfig cfg;
  cfg.with_shielding(false).with_cleanup(false);
  Optimizer opt(ctx_api, cfg);
  const PipelineReport r_api = opt.run(nl_api, tc);

  core::FlimitTable table;
  const core::CircuitResult r_legacy =
      core::optimize_circuit(nl_legacy, ctx_api.dm(), table, tc, {});

  ASSERT_NE(r_api.protocol(), nullptr);
  EXPECT_EQ(r_api.protocol()->paths_optimized, r_legacy.paths_optimized);
  EXPECT_DOUBLE_EQ(r_api.protocol()->achieved_delay_ps,
                   r_legacy.achieved_delay_ps);
  EXPECT_DOUBLE_EQ(r_api.final_area_um, r_legacy.area_um);
  for (netlist::NodeId id : nl_api.gates())
    EXPECT_DOUBLE_EQ(nl_api.drive(id),
                     nl_legacy.drive(nl_legacy.find(nl_api.node(id).name)));
}

// ---------------------------------------------------------------------------
// run_many: determinism across thread counts
// ---------------------------------------------------------------------------

std::vector<Netlist> make_fleet(const OptContext& ctx) {
  std::vector<Netlist> fleet;
  for (const char* name : {"c17", "c432", "c499", "Adder16"})
    fleet.push_back(netlist::make_benchmark(ctx.lib(), name));
  return fleet;
}

TEST(RunMany, OneThreadVsFourThreadsBitIdentical) {
  OptContext ctx1, ctx4;
  std::vector<Netlist> fleet1 = make_fleet(ctx1);
  std::vector<Netlist> fleet4 = make_fleet(ctx4);

  Optimizer opt1(ctx1), opt4(ctx4);
  const auto r1 = opt1.run_many_relative(fleet1, 0.85, 1);
  const auto r4 = opt4.run_many_relative(fleet4, 0.85, 4);

  ASSERT_EQ(r1.size(), fleet1.size());
  ASSERT_EQ(r4.size(), fleet4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1[i].tc_ps, r4[i].tc_ps) << i;
    EXPECT_DOUBLE_EQ(r1[i].final_delay_ps, r4[i].final_delay_ps) << i;
    EXPECT_DOUBLE_EQ(r1[i].final_area_um, r4[i].final_area_um) << i;
    EXPECT_EQ(r1[i].total_buffers_inserted(), r4[i].total_buffers_inserted())
        << i;
    EXPECT_EQ(r1[i].total_paths_optimized(), r4[i].total_paths_optimized())
        << i;
    // The optimized netlists themselves are bit-identical.
    ASSERT_EQ(fleet1[i].size(), fleet4[i].size()) << i;
    for (netlist::NodeId id : fleet1[i].gates())
      EXPECT_DOUBLE_EQ(
          fleet1[i].drive(id),
          fleet4[i].drive(fleet4[i].find(fleet1[i].node(id).name)))
          << i;
  }
}

TEST(RunMany, ReportsInInputOrder) {
  OptContext ctx;
  std::vector<Netlist> fleet = make_fleet(ctx);
  std::vector<double> initial;
  for (const Netlist& nl : fleet)
    initial.push_back(timing::Sta(nl, ctx.dm()).run().critical_delay_ps);

  Optimizer opt(ctx);
  const auto reports = opt.run_many_relative(fleet, 0.9, 2);
  ASSERT_EQ(reports.size(), fleet.size());
  for (std::size_t i = 0; i < reports.size(); ++i)
    EXPECT_NEAR(reports[i].tc_ps, 0.9 * initial[i], 1e-9) << i;
}

TEST(RunMany, EmptySpanIsNoop) {
  OptContext ctx;
  Optimizer opt(ctx);
  std::vector<Netlist> none;
  EXPECT_TRUE(opt.run_many(none, 100.0, 4).empty());
}

TEST(RunMany, WorkerExceptionPropagates) {
  OptContext ctx;
  std::vector<Netlist> fleet = make_fleet(ctx);
  Optimizer opt(ctx);
  EXPECT_THROW(opt.run_many(fleet, -1.0, 2), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Delay-model backend selection & ownership
// ---------------------------------------------------------------------------

TEST(DelayModelBackend, ConfigValidatesBackendSelection) {
  OptimizerConfig cfg;
  cfg.with_delay_model("nldm");  // unknown family name
  EXPECT_FALSE(cfg.validate().empty());
  EXPECT_THROW(cfg.ensure_valid(), api::ConfigError);

  cfg.with_delay_model("table");
  EXPECT_TRUE(cfg.validate().empty());
  timing::TableModelOptions bad;
  bad.slew_grid_ps = {20.0, 10.0};  // not ascending
  cfg.with_table_model(bad);
  EXPECT_FALSE(cfg.validate().empty());

  // Grid problems only matter when the table backend is selected.
  cfg.with_delay_model("closed-form");
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(DelayModelBackend, ContextDefaultsToClosedForm) {
  OptContext ctx;
  EXPECT_EQ(ctx.dm().name(), "closed-form");
  EXPECT_NE(ctx.dm().closed_form(), nullptr);
  EXPECT_EQ(&ctx.dm().lib(), &ctx.lib());
}

TEST(DelayModelBackend, OptimizerInstallsSelectedBackend) {
  OptContext ctx;
  OptimizerConfig cfg;
  cfg.with_delay_model("table");
  Optimizer opt(ctx, cfg);
  EXPECT_EQ(ctx.dm().name(), "table");
  EXPECT_EQ(ctx.dm().selector(), cfg.delay_model_selector());

  // A matching selection must not rebuild (same backend object remains).
  const timing::DelayModel* installed = &ctx.dm();
  Optimizer again(ctx, cfg);
  EXPECT_EQ(&ctx.dm(), installed);

  // Selecting closed-form switches back.
  Optimizer third(ctx, OptimizerConfig{});
  EXPECT_EQ(ctx.dm().name(), "closed-form");

  // The table-selecting optimizer is now stale: running it would silently
  // compute under the wrong backend, so it must refuse instead.
  Netlist nl = netlist::make_benchmark(ctx.lib(), "c17");
  EXPECT_THROW(opt.run_relative(nl, 0.9), std::logic_error);
  EXPECT_NO_THROW(third.run_relative(nl, 0.9));
}

TEST(DelayModelBackend, TableBackendOptimizesEndToEnd) {
  OptContext ctx;
  Netlist nl = netlist::make_benchmark(ctx.lib(), "c432");
  OptimizerConfig cfg;
  cfg.with_delay_model("table");
  Optimizer opt(ctx, cfg);
  const PipelineReport report = opt.run_relative(nl, 0.85);
  EXPECT_EQ(report.delay_model, "table");
  EXPECT_LT(report.final_delay_ps, report.initial_delay_ps);
  EXPECT_TRUE(report.met);
}

TEST(DelayModelBackend, ForeignLibraryBackendRejected) {
  // Regression for the dangling-reference hazard: a backend holds a
  // non-owning pointer to the library it was characterized over, so the
  // context must refuse backends built over any library but its own.
  OptContext ctx;
  pops::liberty::Library other{pops::process::Technology::cmos025()};
  EXPECT_THROW(ctx.set_delay_model(
                   std::make_unique<timing::ClosedFormModel>(other)),
               std::invalid_argument);
  EXPECT_THROW(ctx.set_delay_model(nullptr), std::invalid_argument);
  // The context's own backend is untouched by the rejected installs.
  EXPECT_EQ(ctx.dm().name(), "closed-form");
  EXPECT_NO_THROW(ctx.set_delay_model(
      std::make_unique<timing::ClosedFormModel>(ctx.lib())));
}

TEST(DelayModelBackend, BackendSwitchResetsFlimitCache) {
  // Flimit values are delays of the installed backend; switching backends
  // must invalidate the warmed characterization.
  OptContext ctx;
  ctx.warm_flimits();
  ASSERT_GT(ctx.flimits().size(), 0u);
  Optimizer opt(ctx, OptimizerConfig{}.with_delay_model("table"));
  EXPECT_EQ(ctx.flimits().size(), 0u);
}

// ---------------------------------------------------------------------------
// Cross-pass timing-engine sharing + enumeration gating (obs counters)
// ---------------------------------------------------------------------------

double counter_value(const char* name) {
  const util::Json snap = obs::Registry::global().snapshot_json();
  const util::Json* counters = snap.find("counters");
  if (counters == nullptr) return 0.0;
  const util::Json* cell = counters->find(name);
  return cell == nullptr ? 0.0 : cell->as_number();
}

TEST(EngineSharing, PipelineColdRunsBoundedPerPoint) {
  // One optimization point = one shared IncrementalSta: cold O(E) runs
  // are bounded by structure, not by pass count — one to measure the
  // relative target, one to start the shared engine, one after the sweep
  // pass rebuilds the netlist (id renumbering is outside the dirty-set
  // contract). Everything else — shield candidates, protocol sizing
  // rounds, per-pass delay envelopes — must flow through update().
  OptContext ctx;
  ctx.warm_flimits();  // characterization runs its own engines; exclude
  Netlist nl = netlist::make_benchmark(ctx.lib(), "c880");

  const double full_before = counter_value("sta.full_runs");
  const double updates_before = counter_value("sta.updates");
  const PipelineReport report = Optimizer(ctx).run_relative(nl, 0.85);
  const double full_runs = counter_value("sta.full_runs") - full_before;
  const double updates = counter_value("sta.updates") - updates_before;

  EXPECT_EQ(report.passes.size(), 4u);  // shield, cancel, sweep, protocol
  EXPECT_LE(full_runs, 3.0);  // target measure + engine start + post-sweep
  EXPECT_GE(updates, 1.0);    // the passes really report edits
}

TEST(EngineSharing, ProtocolGatingReplaysCachedEnumerations) {
  // A circuit the protocol cannot improve: the critical path's only gate
  // is the first gate of its path, whose input capacitance is pinned by
  // the primary input's load, while a fast side path keeps the round
  // loop re-checking instead of breaking. Every round after the first
  // must replay the cached path list instead of re-enumerating.
  OptContext ctx;
  Netlist nl(ctx.lib(), "input_pinned");
  const netlist::NodeId a = nl.add_input("a");
  const netlist::NodeId h1 =
      nl.add_gate(liberty::CellKind::Inv, "h1", {a});
  nl.mark_output(h1, 1e4);  // heavy PO keeps the pinned path critical
  const netlist::NodeId b = nl.add_input("b");
  const netlist::NodeId s1 =
      nl.add_gate(liberty::CellKind::Inv, "s1", {b});
  nl.mark_output(s1, 1.0);

  const timing::Sta sta(nl, ctx.dm());
  const double initial = sta.run().critical_delay_ps;

  core::CircuitOptions opt;
  opt.max_rounds = 8;
  const double enum_before = counter_value("sta.kpaths_enumerated");
  const double cached_before = counter_value("sta.kpaths_cached");
  const core::CircuitResult res = api::ProtocolPass::run_protocol(
      nl, ctx.dm(), ctx.flimits(), 0.3 * initial, opt);
  const double enumerations =
      counter_value("sta.kpaths_enumerated") - enum_before;
  const double cached = counter_value("sta.kpaths_cached") - cached_before;

  EXPECT_FALSE(res.met);                // infeasible by construction
  EXPECT_EQ(enumerations, 1.0);         // round 1 only
  EXPECT_GE(cached, 1.0);               // later rounds replayed the cache
}

TEST(DelayModelBackend, ClosedFormRunsBitIdenticalAcrossBackendSwitches) {
  // Running closed-form after a table interlude reproduces the original
  // closed-form result bit-for-bit (the refactor is behavior-preserving).
  OptContext ctx;
  Netlist a = netlist::make_benchmark(ctx.lib(), "c880");
  const PipelineReport before = Optimizer(ctx).run_relative(a, 0.9);

  Netlist scratch = netlist::make_benchmark(ctx.lib(), "c880");
  Optimizer(ctx, OptimizerConfig{}.with_delay_model("table"))
      .run_relative(scratch, 0.9);

  Netlist b = netlist::make_benchmark(ctx.lib(), "c880");
  const PipelineReport after = Optimizer(ctx).run_relative(b, 0.9);
  EXPECT_EQ(before.delay_model, "closed-form");
  EXPECT_EQ(after.delay_model, "closed-form");
  EXPECT_EQ(before.final_delay_ps, after.final_delay_ps);
  EXPECT_EQ(before.final_area_um, after.final_area_um);
}

}  // namespace
