// Unit tests for pops::process::Technology — parameter sanity of the
// generic nodes and the validation contract.

#include <gtest/gtest.h>

#include "pops/process/technology.hpp"

namespace {

using pops::process::Technology;

TEST(Technology, AllNodesValidate) {
  EXPECT_NO_THROW(Technology::cmos025().validate());
  EXPECT_NO_THROW(Technology::cmos018().validate());
  EXPECT_NO_THROW(Technology::cmos013().validate());
}

TEST(Technology, Cmos025Magnitudes) {
  const Technology t = Technology::cmos025();
  EXPECT_DOUBLE_EQ(t.vdd, 2.5);
  EXPECT_NEAR(t.vtn_reduced(), 0.2, 0.05);
  EXPECT_NEAR(t.vtp_reduced(), 0.22, 0.05);
  EXPECT_GT(t.r_ratio, 2.0);
  EXPECT_LT(t.r_ratio, 3.0);
  // tau is calibrated for internal consistency with the alpha-power
  // devices (tau = VDD*Cg/Idsat), giving the textbook ~90ps FO4 delay.
  EXPECT_GT(t.tau_ps, 4.0);
  EXPECT_LT(t.tau_ps, 20.0);
  EXPECT_NEAR(t.tau_ps, t.vdd * t.cgate_ff_per_um / t.idsat_n_ma_um, 0.1 * t.tau_ps);
}

TEST(Technology, ScalingTrendsAcrossNodes) {
  const Technology t25 = Technology::cmos025();
  const Technology t18 = Technology::cmos018();
  const Technology t13 = Technology::cmos013();
  // Supply, tau and feature size shrink with the node.
  EXPECT_GT(t25.vdd, t18.vdd);
  EXPECT_GT(t18.vdd, t13.vdd);
  EXPECT_GT(t25.tau_ps, t18.tau_ps);
  EXPECT_GT(t18.tau_ps, t13.tau_ps);
  EXPECT_GT(t25.feature_um, t18.feature_um);
  // Drive per µm improves.
  EXPECT_LT(t25.idsat_n_ma_um, t13.idsat_n_ma_um);
}

TEST(Technology, ValidateRejectsNonPositive) {
  Technology t = Technology::cmos025();
  t.tau_ps = 0.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Technology, ValidateRejectsHighThreshold) {
  Technology t = Technology::cmos025();
  t.vtn = 1.3;  // above VDD/2
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Technology, ValidateRejectsInvertedWidthRange) {
  Technology t = Technology::cmos025();
  t.wmin_um = t.wmax_um + 1.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Technology, ValidateRejectsSubUnityR) {
  Technology t = Technology::cmos025();
  t.r_ratio = 0.8;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

}  // namespace
