// Tests for the Fig. 7 optimization protocol: constraint-domain
// classification, method dispatch, and the circuit-level driver.

#include <gtest/gtest.h>

#include "pops/core/protocol.hpp"
#include "pops/liberty/library.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/process/technology.hpp"
#include "pops/timing/sta.hpp"

namespace {

using namespace pops::core;
using namespace pops::timing;
using pops::liberty::CellKind;
using pops::liberty::Library;
using pops::process::Technology;

class ProtocolTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
  ClosedFormModel dm{lib};
  FlimitTable table;

  BoundedPath make_path(double off_x = 40.0) const {
    std::vector<PathStage> stages(9);
    const CellKind mix[] = {CellKind::Inv, CellKind::Nand2, CellKind::Nor2,
                            CellKind::Inv};
    for (std::size_t i = 0; i < stages.size(); ++i)
      stages[i].kind = mix[i % 4];
    stages[4].off_path_ff = off_x * lib.cref_ff();
    return BoundedPath(lib, stages, 2.0 * lib.cref_ff(),
                       20.0 * lib.cref_ff(), Edge::Rise,
                       dm.default_input_slew_ps());
  }
};

TEST_F(ProtocolTest, ClassificationThresholds) {
  const double tmin = 100.0;
  EXPECT_EQ(classify_constraint(90.0, tmin), ConstraintDomain::Infeasible);
  EXPECT_EQ(classify_constraint(110.0, tmin), ConstraintDomain::Hard);
  EXPECT_EQ(classify_constraint(119.9, tmin), ConstraintDomain::Hard);
  EXPECT_EQ(classify_constraint(121.0, tmin), ConstraintDomain::Medium);
  EXPECT_EQ(classify_constraint(249.0, tmin), ConstraintDomain::Medium);
  EXPECT_EQ(classify_constraint(251.0, tmin), ConstraintDomain::Weak);
}

TEST_F(ProtocolTest, CustomThresholds) {
  ProtocolOptions opt;
  opt.hard_ratio = 1.5;
  opt.weak_ratio = 3.0;
  EXPECT_EQ(classify_constraint(140.0, 100.0, opt), ConstraintDomain::Hard);
  EXPECT_EQ(classify_constraint(280.0, 100.0, opt), ConstraintDomain::Medium);
  EXPECT_EQ(classify_constraint(310.0, 100.0, opt), ConstraintDomain::Weak);
}

TEST_F(ProtocolTest, ToStringCoverage) {
  EXPECT_STREQ(to_string(ConstraintDomain::Weak), "weak");
  EXPECT_STREQ(to_string(ConstraintDomain::Infeasible), "infeasible");
  EXPECT_STREQ(to_string(Method::Sizing), "sizing");
  EXPECT_STREQ(to_string(Method::Restructure), "restructure+sizing");
}

TEST_F(ProtocolTest, WeakConstraintUsesSizing) {
  const BoundedPath p = make_path();
  const PathBounds b = compute_bounds(p, dm);
  const ProtocolResult r = optimize_path(p, dm, table, 3.0 * b.tmin_ps);
  EXPECT_EQ(r.domain, ConstraintDomain::Weak);
  EXPECT_EQ(r.method, Method::Sizing);
  EXPECT_TRUE(r.sizing.feasible);
  EXPECT_LE(r.sizing.delay_ps, 3.0 * b.tmin_ps * 1.001);
}

TEST_F(ProtocolTest, EveryFeasibleDomainMeetsTc) {
  const BoundedPath p = make_path();
  const PathBounds b = compute_bounds(p, dm);
  for (double ratio : {1.05, 1.15, 1.5, 2.0, 2.8}) {
    const double tc = ratio * b.tmin_ps;
    const ProtocolResult r = optimize_path(p, dm, table, tc);
    EXPECT_TRUE(r.sizing.feasible) << "ratio " << ratio;
    EXPECT_LE(r.sizing.delay_ps, tc * 1.001) << "ratio " << ratio;
  }
}

TEST_F(ProtocolTest, ProtocolNeverWorseThanPureSizing) {
  // The selection step must return an implementation at most as large as
  // the sizing-only one whenever both meet Tc.
  const BoundedPath p = make_path(60.0);
  const PathBounds b = compute_bounds(p, dm);
  for (double ratio : {1.1, 1.5, 2.0}) {
    const double tc = ratio * b.tmin_ps;
    const ProtocolResult r = optimize_path(p, dm, table, tc);
    const SizingResult plain = size_for_constraint(p, dm, tc);
    if (plain.feasible && r.sizing.feasible) {
      EXPECT_LE(r.total_area_um(), plain.area_um * 1.001) << ratio;
    }
  }
}

TEST_F(ProtocolTest, InfeasibleTriggersStructureModification) {
  const BoundedPath p = make_path(80.0);
  const PathBounds b = compute_bounds(p, dm);
  const ProtocolResult r = optimize_path(p, dm, table, 0.93 * b.tmin_ps);
  EXPECT_EQ(r.domain, ConstraintDomain::Infeasible);
  EXPECT_NE(r.method, Method::Sizing);
  // Structure modification pushed the delay below the sizing-only Tmin.
  EXPECT_LT(r.sizing.delay_ps, b.tmin_ps);
}

TEST_F(ProtocolTest, HopelessConstraintReportsInfeasible) {
  const BoundedPath p = make_path();
  const PathBounds b = compute_bounds(p, dm);
  const ProtocolResult r = optimize_path(p, dm, table, 0.05 * b.tmin_ps);
  EXPECT_EQ(r.domain, ConstraintDomain::Infeasible);
  EXPECT_FALSE(r.sizing.feasible);
}

TEST_F(ProtocolTest, InvalidTcThrows) {
  EXPECT_THROW(optimize_path(make_path(), dm, table, -1.0),
               std::invalid_argument);
}

TEST_F(ProtocolTest, ForcedMethodsAllRun) {
  const BoundedPath p = make_path(50.0);
  const PathBounds b = compute_bounds(p, dm);
  const double tc = 1.3 * b.tmin_ps;
  for (Method m : {Method::Sizing, Method::LocalBufferSizing,
                   Method::GlobalBufferSizing, Method::Restructure}) {
    const SizingResult r = optimize_with_method(p, dm, table, tc, m);
    EXPECT_GT(r.area_um, 0.0) << to_string(m);
    EXPECT_GT(r.delay_ps, 0.0) << to_string(m);
  }
}

TEST_F(ProtocolTest, BoundsReportedInResult) {
  const BoundedPath p = make_path();
  const PathBounds b = compute_bounds(p, dm);
  const ProtocolResult r = optimize_path(p, dm, table, 2.0 * b.tmin_ps);
  EXPECT_NEAR(r.tmin_ps, b.tmin_ps, 1e-6 * b.tmin_ps);
  EXPECT_NEAR(r.tmax_ps, b.tmax_ps, 1e-6 * b.tmax_ps);
}

// ---- circuit level -----------------------------------------------------------

TEST_F(ProtocolTest, CircuitOptimizationMeetsRelaxedConstraint) {
  using namespace pops::netlist;
  Netlist nl = make_benchmark(lib, "c432");
  const Sta sta(nl, dm);
  const double initial = sta.run().critical_delay_ps;

  FlimitTable t;
  CircuitOptions opt;
  const double tc = 0.8 * initial;
  const CircuitResult r = optimize_circuit(nl, dm, t, tc, opt);
  EXPECT_TRUE(r.met) << "achieved " << r.achieved_delay_ps << " vs " << tc;
  EXPECT_LE(r.achieved_delay_ps, tc * 1.001);
  EXPECT_GE(r.paths_optimized, 1u);
  EXPECT_GT(r.area_um, 0.0);
}

TEST_F(ProtocolTest, CircuitOptimizationImprovesDelayMonotonically) {
  using namespace pops::netlist;
  Netlist nl = make_benchmark(lib, "c880");
  const Sta sta(nl, dm);
  const double initial = sta.run().critical_delay_ps;

  FlimitTable t;
  const CircuitResult r = optimize_circuit(nl, dm, t, 0.7 * initial, {});
  EXPECT_LT(r.achieved_delay_ps, initial);
}

TEST_F(ProtocolTest, AlreadyMetConstraintIsNoOp) {
  using namespace pops::netlist;
  Netlist nl = make_benchmark(lib, "c17");
  const Sta sta(nl, dm);
  const double initial = sta.run().critical_delay_ps;
  const double area_before = nl.total_width_um();

  FlimitTable t;
  const CircuitResult r = optimize_circuit(nl, dm, t, 2.0 * initial, {});
  EXPECT_TRUE(r.met);
  EXPECT_EQ(r.paths_optimized, 0u);
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_NEAR(nl.total_width_um(), area_before, 1e-9);
}

// Regression for the no-op round spin: when a round's write-back moves no
// drive, the loop must stop instead of burning the whole round budget on
// full STA re-runs that replay bit-identical rounds. A depth-1 netlist is
// the canonical can't-improve case: every PI->PO path has exactly one
// gate, which is the path's stage 0 — fixed by the latch constraint — so
// sizing can never move a drive.
TEST_F(ProtocolTest, NoProgressStopsRoundLoopEarly) {
  using namespace pops::netlist;
  Netlist nl(lib, "flat");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g1 = nl.add_gate(CellKind::Nand2, "g1", {a, b});
  const NodeId g2 = nl.add_gate(CellKind::Nor2, "g2", {a, b});
  nl.mark_output(g1, 40.0);
  nl.mark_output(g2, 40.0);

  const Sta sta(nl, dm);
  const double initial = sta.run().critical_delay_ps;
  const double area_before = nl.total_width_um();

  CircuitOptions opt;
  opt.max_rounds = 12;
  FlimitTable t;
  const CircuitResult r = optimize_circuit(nl, dm, t, 0.3 * initial, opt);
  EXPECT_FALSE(r.met);
  EXPECT_GE(r.paths_optimized, 1u) << "the violating paths were evaluated";
  // Round 1 may re-normalize drives through the cin->wn round trip (last
  // bits only); by round 2 at the latest the write-back is an exact no-op
  // and the loop must stop instead of burning all 12 rounds.
  EXPECT_LE(r.rounds, 2u)
      << "loop must stop when no drive moves, not burn max_rounds";
  EXPECT_NEAR(nl.total_width_um(), area_before, 1e-9);
}

// Regression for the inconsistent met tolerance: the round loop and the
// reported `met` share one epsilon (kTcMetRelTol), so a point inside the
// tolerance band must neither iterate nor report unmet.
TEST_F(ProtocolTest, MetToleranceBoundaryIsConsistent) {
  using namespace pops::netlist;
  Netlist nl = make_benchmark(lib, "c432");
  const Sta sta(nl, dm);
  const double initial = sta.run().critical_delay_ps;

  FlimitTable t;
  // delay = tc * (1 + tol/2): inside the band — met, and zero rounds
  // (before the fix this iterated as "violating" yet reported met=true).
  {
    Netlist copy = nl;
    const double tc = initial / (1.0 + kTcMetRelTol / 2.0);
    ASSERT_GT(initial, tc);  // strictly violating without the tolerance
    const CircuitResult r = optimize_circuit(copy, dm, t, tc, {});
    EXPECT_TRUE(r.met);
    EXPECT_EQ(r.rounds, 0u);
    EXPECT_EQ(r.paths_optimized, 0u);
  }
  // delay = tc * (1 + 2 tol): outside the band — the loop must iterate.
  {
    Netlist copy = nl;
    const double tc = initial / (1.0 + 2.0 * kTcMetRelTol);
    const CircuitResult r = optimize_circuit(copy, dm, t, tc, {});
    EXPECT_GE(r.rounds, 1u);
  }
  EXPECT_TRUE(tc_met(100.0, 100.0));
  EXPECT_TRUE(tc_met(100.0 * (1.0 + kTcMetRelTol / 2.0), 100.0));
  EXPECT_FALSE(tc_met(100.0 * (1.0 + 2.0 * kTcMetRelTol), 100.0));
}

}  // namespace
