// Unit tests for pops::netlist::Netlist — DAG construction, capacitance
// accounting, editing operations and validation.

#include <gtest/gtest.h>

#include "pops/liberty/library.hpp"
#include "pops/netlist/netlist.hpp"
#include "pops/process/technology.hpp"

namespace {

using namespace pops::netlist;
using pops::liberty::CellKind;
using pops::liberty::Library;
using pops::process::Technology;

class NetlistTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
};

TEST_F(NetlistTest, BuildSmallDag) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(CellKind::Nand2, "g", {a, b});
  const NodeId h = nl.add_gate(CellKind::Inv, "h", {g});
  nl.mark_output(h, 10.0);

  EXPECT_EQ(nl.size(), 4u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs(), std::vector<NodeId>{h});
  EXPECT_EQ(nl.gates(), (std::vector<NodeId>{g, h}));
  EXPECT_EQ(nl.fanouts(a), std::vector<NodeId>{g});
  EXPECT_EQ(nl.fanouts(g), std::vector<NodeId>{h});
  EXPECT_NO_THROW(nl.validate());
}

TEST_F(NetlistTest, DuplicateNameThrows) {
  Netlist nl(lib);
  nl.add_input("x");
  EXPECT_THROW(nl.add_input("x"), std::invalid_argument);
}

TEST_F(NetlistTest, ArityMismatchThrows) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(CellKind::Nand2, "g", {a}), std::invalid_argument);
}

TEST_F(NetlistTest, InvalidFaninThrows) {
  Netlist nl(lib);
  nl.add_input("a");
  EXPECT_THROW(nl.add_gate(CellKind::Inv, "g", {99}), std::invalid_argument);
}

TEST_F(NetlistTest, TopoOrderRespectsEdges) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_gate(CellKind::Inv, "g1", {a});
  const NodeId g2 = nl.add_gate(CellKind::Inv, "g2", {g1});
  nl.mark_output(g2, 5.0);
  const auto& topo = nl.topo_order();
  auto pos = [&](NodeId id) {
    return std::find(topo.begin(), topo.end(), id) - topo.begin();
  };
  EXPECT_LT(pos(a), pos(g1));
  EXPECT_LT(pos(g1), pos(g2));
}

TEST_F(NetlistTest, LoadAccountsWireSinksAndPo) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(CellKind::Inv, "g", {a});
  const NodeId s1 = nl.add_gate(CellKind::Inv, "s1", {g});
  const NodeId s2 = nl.add_gate(CellKind::Nand2, "s2", {g, a});
  nl.mark_output(g, 7.5);
  nl.mark_output(s1, 1.0);
  nl.mark_output(s2, 1.0);
  nl.set_wire_cap(g, 3.0);
  EXPECT_NEAR(nl.load_ff(g), 3.0 + 7.5 + nl.cin_ff(s1) + nl.cin_ff(s2), 1e-12);
}

TEST_F(NetlistTest, DriveClampingAndCin) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(CellKind::Inv, "g", {a});
  nl.mark_output(g, 1.0);
  nl.set_drive(g, 1e9);
  EXPECT_DOUBLE_EQ(nl.drive(g), lib.wmax_um());
  nl.set_drive(g, 0.0);
  EXPECT_DOUBLE_EQ(nl.drive(g), lib.wmin_um());
  EXPECT_NEAR(nl.cin_ff(g), lib.cref_ff(), 1e-12);
  EXPECT_THROW(nl.set_drive(a, 1.0), std::invalid_argument);
  EXPECT_THROW(nl.drive(a), std::invalid_argument);
}

TEST_F(NetlistTest, TotalWidthSumsGates) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_gate(CellKind::Inv, "g1", {a});
  const NodeId g2 = nl.add_gate(CellKind::Inv, "g2", {g1});
  nl.mark_output(g2, 1.0);
  nl.set_drive(g1, 1.0);
  nl.set_drive(g2, 2.0);
  const auto& inv = lib.cell(CellKind::Inv);
  EXPECT_NEAR(nl.total_width_um(),
              inv.total_width_um(1.0) + inv.total_width_um(2.0), 1e-12);
}

TEST_F(NetlistTest, InsertBufferCapturesAllSinksAndPo) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(CellKind::Inv, "g", {a});
  const NodeId s1 = nl.add_gate(CellKind::Inv, "s1", {g});
  nl.mark_output(g, 9.0);
  nl.mark_output(s1, 2.0);
  nl.set_wire_cap(g, 4.0);

  const NodeId buf = nl.insert_buffer(g, CellKind::Buf, "buf_g");
  EXPECT_EQ(nl.fanouts(g), std::vector<NodeId>{buf});
  EXPECT_EQ(nl.fanouts(buf), std::vector<NodeId>{s1});
  // PO role and wire cap migrated to the buffer.
  EXPECT_FALSE(nl.node(g).is_output);
  EXPECT_TRUE(nl.node(buf).is_output);
  EXPECT_DOUBLE_EQ(nl.node(buf).po_load_ff, 9.0);
  EXPECT_DOUBLE_EQ(nl.node(buf).wire_cap_ff, 4.0);
  EXPECT_NO_THROW(nl.validate());
}

TEST_F(NetlistTest, InsertBufferOnSubsetOfSinks) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(CellKind::Inv, "g", {a});
  const NodeId s1 = nl.add_gate(CellKind::Inv, "s1", {g});
  const NodeId s2 = nl.add_gate(CellKind::Inv, "s2", {g});
  nl.mark_output(s1, 1.0);
  nl.mark_output(s2, 1.0);

  const NodeId buf = nl.insert_buffer(g, CellKind::Inv, "b", {s2});
  EXPECT_EQ(nl.fanouts(buf), std::vector<NodeId>{s2});
  // s1 still fed directly.
  const auto& fo = nl.fanouts(g);
  EXPECT_NE(std::find(fo.begin(), fo.end(), s1), fo.end());
  EXPECT_NO_THROW(nl.validate());
}

TEST_F(NetlistTest, InsertBufferRejectsNonBufferKinds) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(CellKind::Inv, "g", {a});
  nl.mark_output(g, 1.0);
  EXPECT_THROW(nl.insert_buffer(g, CellKind::Nand2, "b"),
               std::invalid_argument);
}

TEST_F(NetlistTest, ReplaceCellKeepsArity) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(CellKind::Nor2, "g", {a, b});
  nl.mark_output(g, 1.0);
  nl.replace_cell(g, CellKind::Nand2);
  EXPECT_EQ(nl.node(g).kind, CellKind::Nand2);
  EXPECT_THROW(nl.replace_cell(g, CellKind::Inv), std::invalid_argument);
}

TEST_F(NetlistTest, RenamePreservesLookup) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(CellKind::Inv, "g", {a});
  nl.mark_output(g, 1.0);
  nl.rename(g, "renamed");
  EXPECT_EQ(nl.find("renamed"), g);
  EXPECT_EQ(nl.find("g"), kNoNode);
  EXPECT_THROW(nl.rename(g, "a"), std::invalid_argument);
}

TEST_F(NetlistTest, DepthsAndStats) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g1 = nl.add_gate(CellKind::Nand2, "g1", {a, b});
  const NodeId g2 = nl.add_gate(CellKind::Inv, "g2", {g1});
  const NodeId g3 = nl.add_gate(CellKind::Nand2, "g3", {g2, a});
  nl.mark_output(g3, 1.0);
  const auto d = nl.depths();
  EXPECT_EQ(d[static_cast<std::size_t>(a)], 0);
  EXPECT_EQ(d[static_cast<std::size_t>(g1)], 1);
  EXPECT_EQ(d[static_cast<std::size_t>(g3)], 3);

  const NetlistStats s = nl.stats();
  EXPECT_EQ(s.n_inputs, 2u);
  EXPECT_EQ(s.n_gates, 3u);
  EXPECT_EQ(s.depth, 3u);
  EXPECT_EQ(s.gates_by_kind.at("nand2"), 2u);
}

TEST_F(NetlistTest, ValidateDetectsDangling) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_gate(CellKind::Inv, "g1", {a});
  const NodeId g2 = nl.add_gate(CellKind::Inv, "g2", {a});
  nl.mark_output(g1, 1.0);
  (void)g2;  // g2 dangles
  EXPECT_THROW(nl.validate(), std::logic_error);
}

TEST_F(NetlistTest, FreshNameNeverCollides) {
  Netlist nl(lib);
  nl.add_input("buf_0");
  const std::string n1 = nl.fresh_name("buf");
  const std::string n2 = nl.fresh_name("buf");
  EXPECT_NE(n1, "buf_0");
  EXPECT_NE(n1, n2);
}

// ---- build_wide_gate ---------------------------------------------------------

class WideGateTest : public ::testing::TestWithParam<std::tuple<int, bool, bool>> {};

TEST_P(WideGateTest, ComputesWideAndOr) {
  const auto [width, is_and, invert] = GetParam();
  const Library lib(Technology::cmos025());
  Netlist nl(lib);
  std::vector<NodeId> pis;
  for (int i = 0; i < width; ++i)
    pis.push_back(nl.add_input("i" + std::to_string(i)));
  const NodeId root = build_wide_gate(nl, is_and, invert, pis, "w");
  nl.mark_output(root, 1.0);
  nl.validate();

  // Check against the reference function over all input patterns.
  for (unsigned pattern = 0; pattern < (1u << width); ++pattern) {
    // Direct recursive evaluation through node values.
    std::vector<bool> value(nl.size());
    for (int i = 0; i < width; ++i)
      value[static_cast<std::size_t>(pis[static_cast<std::size_t>(i)])] =
          (pattern >> i) & 1u;
    for (NodeId id : nl.topo_order()) {
      const Node& node = nl.node(id);
      if (node.is_input) continue;
      bool raw[4];
      for (std::size_t k = 0; k < node.fanins.size(); ++k)
        raw[k] = value[static_cast<std::size_t>(node.fanins[k])];
      value[static_cast<std::size_t>(id)] =
          lib.cell(node.kind).eval({raw, node.fanins.size()});
    }
    bool expect = is_and;
    for (int i = 0; i < width; ++i) {
      const bool bit = (pattern >> i) & 1u;
      expect = is_and ? (expect && bit) : (i == 0 ? bit : (expect || bit));
    }
    if (invert) expect = !expect;
    EXPECT_EQ(value[static_cast<std::size_t>(root)], expect)
        << "width=" << width << " and=" << is_and << " inv=" << invert
        << " pattern=" << pattern;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, WideGateTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 13),
                       ::testing::Bool(), ::testing::Bool()));

}  // namespace
