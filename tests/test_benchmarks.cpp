// Tests for the benchmark provider: the structural circuits are
// functionally correct, the synthetic ISCAS-like circuits match their spec
// (critical-path depth, gate budget) and generation is deterministic.

#include <gtest/gtest.h>

#include "pops/liberty/library.hpp"
#include "pops/netlist/bench_io.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/netlist/logic_sim.hpp"
#include "pops/process/technology.hpp"
#include "pops/util/rng.hpp"

namespace {

using namespace pops::netlist;
using pops::liberty::CellKind;
using pops::liberty::Library;
using pops::process::Technology;
using pops::util::Rng;

class BenchmarksTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
};

TEST_F(BenchmarksTest, Adder16AddsCorrectly) {
  const Netlist nl = make_adder16(lib);
  const LogicSimulator sim(nl);
  Rng rng(101);

  auto run = [&](unsigned a, unsigned b, bool cin) {
    std::vector<bool> in(33);
    for (int i = 0; i < 16; ++i) {
      in[static_cast<std::size_t>(i)] = (a >> i) & 1u;         // a0..a15
      in[static_cast<std::size_t>(16 + i)] = (b >> i) & 1u;    // b0..b15
    }
    in[32] = cin;
    const auto values = sim.eval_all(in);
    unsigned sum = 0;
    for (int i = 0; i < 16; ++i)
      if (values[static_cast<std::size_t>(nl.find("s" + std::to_string(i)))])
        sum |= 1u << i;
    const bool cout = values[static_cast<std::size_t>(nl.find("cout"))];
    return std::make_pair(sum, cout);
  };

  // Directed corners.
  EXPECT_EQ(run(0, 0, false), std::make_pair(0u, false));
  EXPECT_EQ(run(0xFFFF, 0, true), std::make_pair(0u, true));
  EXPECT_EQ(run(0xFFFF, 1, false), std::make_pair(0u, true));
  EXPECT_EQ(run(0x8000, 0x8000, false), std::make_pair(0u, true));
  EXPECT_EQ(run(1234, 4321, false), std::make_pair(5555u, false));

  // Random vectors.
  for (int t = 0; t < 200; ++t) {
    const unsigned a = static_cast<unsigned>(rng.uniform_int(0, 0xFFFF));
    const unsigned b = static_cast<unsigned>(rng.uniform_int(0, 0xFFFF));
    const bool cin = rng.bernoulli(0.5);
    const unsigned full = a + b + (cin ? 1u : 0u);
    EXPECT_EQ(run(a, b, cin),
              std::make_pair(full & 0xFFFFu, (full >> 16) != 0u))
        << a << "+" << b << "+" << cin;
  }
}

TEST_F(BenchmarksTest, C17MatchesPublishedStructure) {
  const Netlist nl = make_c17(lib);
  EXPECT_EQ(nl.stats().n_gates, 6u);
  EXPECT_EQ(nl.stats().gates_by_kind.at("nand2"), 6u);
  EXPECT_EQ(nl.stats().n_inputs, 5u);
  EXPECT_EQ(nl.stats().n_outputs, 2u);
}

TEST_F(BenchmarksTest, SpecsLookupAndUnknownName) {
  EXPECT_EQ(benchmark_spec("c432").path_depth, 29);
  EXPECT_EQ(benchmark_spec("c6288").path_depth, 116);
  EXPECT_THROW(benchmark_spec("c9999"), std::invalid_argument);
  EXPECT_THROW(make_benchmark(lib, "c9999"), std::invalid_argument);
}

class SyntheticBenchmarkTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(SyntheticBenchmarkTest, MatchesSpecShape) {
  const Library lib(Technology::cmos025());
  const BenchmarkSpec& spec = benchmark_spec(GetParam());
  const Netlist nl = make_synthetic(lib, spec);
  EXPECT_NO_THROW(nl.validate());

  const NetlistStats stats = nl.stats();
  EXPECT_EQ(stats.n_inputs, static_cast<std::size_t>(spec.n_pi));
  EXPECT_EQ(stats.n_gates, static_cast<std::size_t>(spec.n_gates));
  // The deepest path realises exactly the published critical-path length.
  EXPECT_EQ(stats.depth, static_cast<std::size_t>(spec.path_depth));
  EXPECT_GE(stats.n_outputs, 1u);
}

INSTANTIATE_TEST_SUITE_P(PaperSuite, SyntheticBenchmarkTest,
                         ::testing::Values("fpd", "c432", "c499", "c880",
                                           "c1355", "c1908", "c3540"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST_F(BenchmarksTest, GenerationIsDeterministic) {
  const Netlist a = make_benchmark(lib, "c432");
  const Netlist b = make_benchmark(lib, "c432");
  EXPECT_EQ(write_bench_string(a), write_bench_string(b));
}

TEST_F(BenchmarksTest, DifferentSeedsDiffer) {
  BenchmarkSpec spec = benchmark_spec("c432");
  const Netlist a = make_synthetic(lib, spec);
  spec.seed ^= 0xDEADBEEF;
  const Netlist b = make_synthetic(lib, spec);
  EXPECT_NE(write_bench_string(a), write_bench_string(b));
}

TEST_F(BenchmarksTest, BadSpecThrows) {
  BenchmarkSpec spec{"tiny", 1, 1, 1, 1, 0};
  EXPECT_THROW(make_synthetic(lib, spec), std::invalid_argument);
}

TEST_F(BenchmarksTest, ChainBuilder) {
  const Netlist nl = make_chain(
      lib, {CellKind::Inv, CellKind::Nand2, CellKind::Nor3}, 12.0, "t");
  EXPECT_EQ(nl.stats().n_gates, 3u);
  // Side inputs: nand2 needs 1, nor3 needs 2 -> 1 main + 3 side PIs.
  EXPECT_EQ(nl.stats().n_inputs, 4u);
  EXPECT_EQ(nl.stats().depth, 3u);
  EXPECT_NO_THROW(nl.validate());
  EXPECT_THROW(make_chain(lib, {}, 1.0), std::invalid_argument);
}

TEST_F(BenchmarksTest, PaperFigureCircuits) {
  const Netlist fig3 = make_fig3_path(lib);
  EXPECT_EQ(fig3.stats().n_gates, 11u);  // the 11-gate path of Fig. 3
  const Netlist fig6 = make_fig6_array(lib);
  EXPECT_EQ(fig6.stats().n_gates, 13u);  // the 13-gate array of Fig. 6
  // Fig. 6's array has a heavily loaded interior node.
  const NodeId g6 = fig6.find("fig6_array_g6");
  ASSERT_NE(g6, kNoNode);
  EXPECT_GT(fig6.node(g6).wire_cap_ff, 20.0 * lib.cref_ff());
}

TEST_F(BenchmarksTest, AllPaperBenchmarksMaterialise) {
  for (const BenchmarkSpec& spec : paper_benchmarks()) {
    const Netlist nl = make_benchmark(lib, spec.name);
    EXPECT_NO_THROW(nl.validate()) << spec.name;
    EXPECT_GE(nl.stats().n_gates, 6u) << spec.name;
  }
}

}  // namespace
