// Unit tests for pops::util — table rendering, deterministic RNG,
// statistics and the scalar numeric kernels.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "pops/util/csv.hpp"
#include "pops/util/rng.hpp"
#include "pops/util/stats.hpp"
#include "pops/util/table.hpp"

namespace {

using namespace pops::util;

TEST(Table, RendersHeaderAndRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(s.find("| 333 | 4  |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RightAlignment) {
  Table t({"n"});
  t.set_align(0, Align::Right);
  t.add_row({"7"});
  t.add_row({"1234"});
  const std::string s = t.str();
  EXPECT_NE(s.find("|    7 |"), std::string::npos);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Table, RuleSeparatesGroups) {
  Table t({"x"});
  t.add_row({"a"});
  t.add_rule();
  t.add_row({"b"});
  // Four horizontal rules: top, under header, mid, bottom.
  const std::string s = t.str();
  std::size_t count = 0, pos = 0;
  while ((pos = s.find("+--", pos)) != std::string::npos) {
    ++count;
    pos += 3;
  }
  EXPECT_EQ(count, 4u);
}

TEST(Fmt, FormatsNumbers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_percent(0.137, 0), "14%");
  EXPECT_EQ(fmt_percent(0.137, 1), "13.7%");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(3);
  bool seen[5] = {};
  for (int i = 0; i < 500; ++i) seen[r.uniform_int(0, 4)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(RunningStats, MeanMinMaxVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, ApproxEqualRelative) {
  EXPECT_TRUE(approx_equal(1e9, 1e9 + 1, 1e-6));
  EXPECT_FALSE(approx_equal(1.0, 1.1, 1e-6));
}

TEST(Stats, RelDiff) {
  EXPECT_NEAR(rel_diff(10.0, 11.0), 1.0 / 11.0, 1e-12);
  EXPECT_DOUBLE_EQ(rel_diff(0.0, 0.0), 0.0);
}

TEST(GoldenSection, FindsParabolaMinimum) {
  const double x = golden_section_min(
      [](double v) { return (v - 3.7) * (v - 3.7) + 1.0; }, 0.0, 10.0, 1e-8);
  EXPECT_NEAR(x, 3.7, 1e-6);
}

TEST(GoldenSection, BadBracketThrows) {
  EXPECT_THROW(golden_section_min([](double v) { return v; }, 1.0, 1.0),
               std::invalid_argument);
}

TEST(BisectRoot, FindsRoot) {
  const double x =
      bisect_root([](double v) { return v * v - 2.0; }, 0.0, 2.0, 1e-12);
  EXPECT_NEAR(x, std::sqrt(2.0), 1e-9);
}

TEST(BisectRoot, NoSignChangeThrows) {
  EXPECT_THROW(bisect_root([](double v) { return v * v + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(MeanOf, ThrowsOnEmpty) {
  EXPECT_THROW(mean_of({}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
}

TEST(Csv, EscapesSpecials) {
  const std::string path = ::testing::TempDir() + "pops_csv_test.csv";
  {
    CsvWriter w(path);
    w.row(std::vector<std::string>{"a,b", "say \"hi\"", "plain"});
    w.row(std::vector<double>{1.5, 2.0}, 3);
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "\"a,b\",\"say \"\"hi\"\"\",plain");
  EXPECT_EQ(line2, "1.5,2");
}

}  // namespace
