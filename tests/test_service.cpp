// The pops::service subsystem: result-cache accounting and bit-identical
// replay, cache keying across constraint axes, run_many determinism with
// the cache enabled, the pass registry, sweep-spec validation, sweep
// equivalence to direct Optimizer runs, and JSON serialization.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "pops/api/api.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/service/result_cache.hpp"
#include "pops/service/serialize.hpp"
#include "pops/service/sweep.hpp"
#include "pops/timing/sta.hpp"
#include "pops/timing/table_model.hpp"

namespace {

using namespace pops;
using api::OptContext;
using api::Optimizer;
using api::OptimizerConfig;
using api::PassRegistry;
using api::PipelineReport;
using netlist::Netlist;
using service::ResultCache;
using service::SweepService;
using service::SweepSpec;

void expect_same_netlist(const Netlist& a, const Netlist& b) {
  ASSERT_EQ(a.size(), b.size());
  for (netlist::NodeId id : a.gates()) {
    const netlist::NodeId other = b.find(a.node(id).name);
    ASSERT_NE(other, netlist::kNoNode) << a.node(id).name;
    EXPECT_DOUBLE_EQ(a.drive(id), b.drive(other)) << a.node(id).name;
  }
}

void expect_same_report(const PipelineReport& fresh,
                        const PipelineReport& cached) {
  EXPECT_DOUBLE_EQ(fresh.tc_ps, cached.tc_ps);
  EXPECT_DOUBLE_EQ(fresh.initial_delay_ps, cached.initial_delay_ps);
  EXPECT_DOUBLE_EQ(fresh.final_delay_ps, cached.final_delay_ps);
  EXPECT_DOUBLE_EQ(fresh.initial_area_um, cached.initial_area_um);
  EXPECT_DOUBLE_EQ(fresh.final_area_um, cached.final_area_um);
  EXPECT_EQ(fresh.met, cached.met);
  EXPECT_EQ(fresh.total_buffers_inserted(), cached.total_buffers_inserted());
  EXPECT_EQ(fresh.total_gates_removed(), cached.total_gates_removed());
  EXPECT_EQ(fresh.total_paths_optimized(), cached.total_paths_optimized());
  ASSERT_EQ(fresh.passes.size(), cached.passes.size());
  for (std::size_t i = 0; i < fresh.passes.size(); ++i)
    EXPECT_EQ(fresh.passes[i].pass_name, cached.passes[i].pass_name);
}

// ---------------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------------

TEST(ResultCache, HitMissAccounting) {
  OptContext ctx;
  auto cache = std::make_shared<ResultCache>();
  ctx.set_result_cache(cache);
  Optimizer opt(ctx);

  Netlist nl1 = netlist::make_benchmark(ctx.lib(), "c17");
  opt.run_relative(nl1, 0.9);
  EXPECT_EQ(cache->hits(), 0u);
  EXPECT_EQ(cache->misses(), 1u);
  EXPECT_EQ(cache->size(), 1u);

  Netlist nl2 = netlist::make_benchmark(ctx.lib(), "c17");
  opt.run_relative(nl2, 0.9);
  EXPECT_EQ(cache->hits(), 1u);
  EXPECT_EQ(cache->misses(), 1u);
  EXPECT_EQ(cache->size(), 1u);

  cache->clear();
  EXPECT_EQ(cache->hits(), 0u);
  EXPECT_EQ(cache->misses(), 0u);
  EXPECT_EQ(cache->size(), 0u);
}

TEST(ResultCache, CachedReplayIsBitIdentical) {
  // Fresh run without any cache...
  OptContext ctx_fresh;
  Netlist nl_fresh = netlist::make_benchmark(ctx_fresh.lib(), "c432");
  const PipelineReport r_fresh = Optimizer(ctx_fresh).run_relative(nl_fresh, 0.8);

  // ...vs a cached replay in a caching context.
  OptContext ctx;
  ctx.set_result_cache(std::make_shared<ResultCache>());
  Optimizer opt(ctx);
  Netlist nl_miss = netlist::make_benchmark(ctx.lib(), "c432");
  const PipelineReport r_miss = opt.run_relative(nl_miss, 0.8);
  Netlist nl_hit = netlist::make_benchmark(ctx.lib(), "c432");
  const PipelineReport r_hit = opt.run_relative(nl_hit, 0.8);

  EXPECT_FALSE(r_miss.from_cache);
  EXPECT_TRUE(r_hit.from_cache);
  expect_same_report(r_fresh, r_miss);
  expect_same_report(r_fresh, r_hit);
  expect_same_netlist(nl_fresh, nl_miss);
  expect_same_netlist(nl_fresh, nl_hit);
}

TEST(ResultCache, KeyedByConstraintAndCircuit) {
  OptContext ctx;
  auto cache = std::make_shared<ResultCache>();
  ctx.set_result_cache(cache);
  Optimizer opt(ctx);

  // Different Tc points of the same circuit are distinct entries.
  for (const double ratio : {0.8, 0.9, 1.0}) {
    Netlist nl = netlist::make_benchmark(ctx.lib(), "c17");
    opt.run_relative(nl, ratio);
  }
  EXPECT_EQ(cache->misses(), 3u);
  EXPECT_EQ(cache->size(), 3u);

  // A different circuit is a distinct entry.
  Netlist other = netlist::make_benchmark(ctx.lib(), "Adder16");
  opt.run_relative(other, 0.9);
  EXPECT_EQ(cache->misses(), 4u);
  EXPECT_EQ(cache->size(), 4u);
  EXPECT_EQ(cache->hits(), 0u);
}

TEST(ResultCache, KeyedByShieldMarginAndConfig) {
  OptContext ctx;
  auto cache = std::make_shared<ResultCache>();
  ctx.set_result_cache(cache);

  // Same circuit + Tc under different Flimit bounds (shield margins) and
  // policies must not collide.
  for (const double margin : {1.0, 1.5}) {
    OptimizerConfig cfg;
    cfg.shield_margin = margin;
    Optimizer opt(ctx, cfg);
    Netlist nl = netlist::make_benchmark(ctx.lib(), "c432");
    opt.run_relative(nl, 0.85);
  }
  EXPECT_EQ(cache->misses(), 2u);
  EXPECT_EQ(cache->hits(), 0u);

  OptimizerConfig no_restructure;
  no_restructure.with_restructuring(false);
  Optimizer opt(ctx, no_restructure);
  Netlist nl = netlist::make_benchmark(ctx.lib(), "c432");
  opt.run_relative(nl, 0.85);
  EXPECT_EQ(cache->misses(), 3u);
  EXPECT_EQ(cache->size(), 3u);
}

TEST(ResultCache, KeyIsNormalizedToPassesThatReadTheKnob) {
  // With shielding disabled, shield_margin cannot affect the result, so a
  // margin sweep under a no-shield policy must collapse to one entry per
  // (circuit, Tc) — the second margin point is a hit, not a recompute.
  OptContext ctx;
  auto cache = std::make_shared<ResultCache>();
  ctx.set_result_cache(cache);
  for (const double margin : {1.0, 1.5, 2.0}) {
    OptimizerConfig cfg;
    cfg.with_shielding(false);
    cfg.shield_margin = margin;
    Optimizer opt(ctx, cfg);
    Netlist nl = netlist::make_benchmark(ctx.lib(), "c17");
    opt.run_relative(nl, 0.9);
  }
  EXPECT_EQ(cache->misses(), 1u);
  EXPECT_EQ(cache->hits(), 2u);
  EXPECT_EQ(cache->size(), 1u);
}

namespace salt {

// Same name, different constructor parameter: cache_salt must keep the
// two variants from sharing cached results.
class NoopPass final : public api::Pass {
 public:
  explicit NoopPass(int strength) : strength_(strength) {}
  std::string_view name() const noexcept override { return "noop"; }
  std::string cache_salt() const override {
    return "strength=" + std::to_string(strength_);
  }
  void run(netlist::Netlist&, OptContext&, const OptimizerConfig&, double,
           api::PassReport&) const override {}

 private:
  int strength_;
};

}  // namespace salt

TEST(ResultCache, CustomPassSaltDistinguishesKeys) {
  OptContext ctx;
  const OptimizerConfig cfg;
  api::PassPipeline a, b, b2;
  a.emplace<salt::NoopPass>(1).emplace<api::ProtocolPass>();
  b.emplace<salt::NoopPass>(2).emplace<api::ProtocolPass>();
  b2.emplace<salt::NoopPass>(2).emplace<api::ProtocolPass>();
  EXPECT_NE(ResultCache::hash_config(ctx, cfg, a),
            ResultCache::hash_config(ctx, cfg, b));
  EXPECT_EQ(ResultCache::hash_config(ctx, cfg, b),
            ResultCache::hash_config(ctx, cfg, b2));
}

TEST(ResultCache, UnknownPassHashesEveryKnob) {
  // A custom pass may read any config knob, so normalization must not
  // collapse configs that differ only in a knob no built-in pass of the
  // pipeline reads.
  OptContext ctx;
  OptimizerConfig a, b;
  b.shield_margin = 1.5;  // no shield pass in the pipeline below
  api::PassPipeline p1, p2;
  p1.emplace<salt::NoopPass>(1);
  p2.emplace<salt::NoopPass>(1);
  EXPECT_NE(ResultCache::hash_config(ctx, a, p1),
            ResultCache::hash_config(ctx, b, p2));
}

TEST(ResultCache, KeyIsContextBound) {
  // Cached netlists/reports point into the storing context (library,
  // BoundedPaths), so a second context — even an identically configured
  // one — must miss rather than replay foreign state. The binding lives
  // in ResultCacheKey::ctx_bits (set by make_key), NOT in hash_config:
  // config hashes are pure content so persisted entries stay comparable
  // across processes (service/cache_io.hpp).
  OptContext a, b;
  const OptimizerConfig cfg;
  const api::PassPipeline p1 = api::PassPipeline::standard(cfg);
  const api::PassPipeline p2 = api::PassPipeline::standard(cfg);
  EXPECT_EQ(ResultCache::hash_config(a, cfg, p1),
            ResultCache::hash_config(a, cfg, p2));
  EXPECT_EQ(ResultCache::hash_config(a, cfg, p1),
            ResultCache::hash_config(b, cfg, p2));
  EXPECT_EQ(ResultCache::hash_context(a), ResultCache::hash_context(b));

  ResultCache cache;
  const Netlist nl = netlist::make_benchmark(a.lib(), "c17");
  const api::ResultCacheKey ka = cache.make_key(a, nl, cfg, p1, 100.0);
  const api::ResultCacheKey kb = cache.make_key(b, nl, cfg, p2, 100.0);
  EXPECT_EQ(ka.circuit_hash, kb.circuit_hash);
  EXPECT_EQ(ka.config_hash, kb.config_hash);
  EXPECT_EQ(ka.tc_bits, kb.tc_bits);
  EXPECT_NE(ka.ctx_bits, kb.ctx_bits);
  EXPECT_FALSE(ka == kb);
}

TEST(ResultCache, HashContextSeparatesSeedsAndTechnologies) {
  OptContext a;
  OptContext seeded(process::Technology::cmos025(), core::FlimitOptions{},
                    /*rng_seed=*/12345);
  EXPECT_NE(ResultCache::hash_context(a), ResultCache::hash_context(seeded));
}

TEST(ResultCache, KeyDependsOnNetlistName) {
  // A hit overwrites the caller's netlist wholesale, name included — so
  // structurally identical circuits under different names must not share
  // an entry (the replay would silently relabel the design).
  OptContext ctx;
  const std::vector<liberty::CellKind> kinds(4, liberty::CellKind::Inv);
  const Netlist a = netlist::make_chain(ctx.lib(), kinds, 12.0, "top_a");
  const Netlist b = netlist::make_chain(ctx.lib(), kinds, 12.0, "top_b");
  EXPECT_NE(ResultCache::hash_netlist(a), ResultCache::hash_netlist(b));
}

TEST(ResultCache, RepeatedRelativeRunMemoizesInitialSta) {
  OptContext ctx;
  auto cache = std::make_shared<ResultCache>();
  ctx.set_result_cache(cache);
  Optimizer opt(ctx);
  Netlist nl1 = netlist::make_benchmark(ctx.lib(), "c17");
  const PipelineReport r1 = opt.run_relative(nl1, 0.9);

  // The memoized initial delay must be retrievable under the tc-less key
  // and make the repeat derive a bit-identical Tc.
  const api::ResultCacheKey key = cache->make_key(
      ctx, netlist::make_benchmark(ctx.lib(), "c17"), opt.config(),
      opt.pipeline(), 0.0);
  ASSERT_TRUE(cache->initial_delay_ps(key).has_value());
  EXPECT_DOUBLE_EQ(*cache->initial_delay_ps(key), r1.initial_delay_ps);

  Netlist nl2 = netlist::make_benchmark(ctx.lib(), "c17");
  const PipelineReport r2 = opt.run_relative(nl2, 0.9);
  EXPECT_TRUE(r2.from_cache);
  EXPECT_DOUBLE_EQ(r1.tc_ps, r2.tc_ps);
}

TEST(ResultCache, InitialDelayMemoStoresZero) {
  // The memo is sentinel-free: a legitimately measured 0.0 is stored and
  // distinguishable from "never stored" (nullopt).
  ResultCache cache;
  api::ResultCacheKey key{1, 2, 0, 3};
  EXPECT_FALSE(cache.initial_delay_ps(key).has_value());
  cache.store_initial_delay(key, 0.0);
  ASSERT_TRUE(cache.initial_delay_ps(key).has_value());
  EXPECT_EQ(*cache.initial_delay_ps(key), 0.0);
}

namespace {
// Delegating hook that counts memo traffic — the observable for the
// zero-delay miss regression below.
struct CountingCache final : api::ResultCacheHook {
  ResultCache inner;
  mutable int memo_queries = 0;
  mutable int memo_known = 0;
  int memo_stores = 0;

  api::ResultCacheKey make_key(const api::OptContext& ctx, const Netlist& nl,
                               const OptimizerConfig& cfg,
                               const api::PassPipeline& pipeline,
                               double tc_ps) const override {
    return inner.make_key(ctx, nl, cfg, pipeline, tc_ps);
  }
  bool lookup(const api::ResultCacheKey& key, Netlist& nl,
              PipelineReport& report) override {
    return inner.lookup(key, nl, report);
  }
  void store(const api::ResultCacheKey& key, const Netlist& nl,
             const PipelineReport& report) override {
    inner.store(key, nl, report);
  }
  std::optional<double> initial_delay_ps(
      const api::ResultCacheKey& key) const override {
    ++memo_queries;
    const std::optional<double> v = inner.initial_delay_ps(key);
    if (v) ++memo_known;
    return v;
  }
  void store_initial_delay(const api::ResultCacheKey& key,
                           double delay_ps) override {
    ++memo_stores;
    inner.store_initial_delay(key, delay_ps);
  }
};
}  // namespace

TEST(ResultCache, ZeroInitialDelayIsMemoizedOnce) {
  // Regression: a degenerate netlist whose critical delay is exactly 0.0
  // used to never memoize (the store was gated on initial > 0.0), so
  // every replay re-ran full STA. Both runs still throw — a zero-derived
  // Tc is invalid — but the second must be served from the memo.
  OptContext ctx;
  auto cache = std::make_shared<CountingCache>();
  ctx.set_result_cache(cache);
  Optimizer opt(ctx);

  Netlist nl(ctx.lib(), "wire");
  const netlist::NodeId a = nl.add_input("a");
  nl.mark_output(a, 10.0);  // PI fed straight to a PO: zero critical delay

  EXPECT_THROW(opt.run_relative(nl, 0.9), std::invalid_argument);
  EXPECT_EQ(cache->memo_stores, 1) << "0.0 must be stored, not skipped";
  EXPECT_EQ(cache->memo_known, 0);

  EXPECT_THROW(opt.run_relative(nl, 0.9), std::invalid_argument);
  EXPECT_EQ(cache->memo_stores, 1) << "replay must not re-measure";
  EXPECT_EQ(cache->memo_known, 1) << "replay must hit the memo";
}

TEST(ResultCache, KeyDependsOnInputSizing) {
  // The key hashes netlist *content*, including current drives: the same
  // topology at different initial sizes is a different problem.
  OptContext ctx;
  Netlist a = netlist::make_benchmark(ctx.lib(), "c17");
  Netlist b = netlist::make_benchmark(ctx.lib(), "c17");
  const auto key_a = ResultCache::hash_netlist(a);
  EXPECT_EQ(key_a, ResultCache::hash_netlist(b));
  b.set_drive(b.gates().front(), 2.0 * b.drive(b.gates().front()));
  EXPECT_NE(key_a, ResultCache::hash_netlist(b));
}

TEST(ResultCache, RunManyDeterministicWithCacheAcrossThreadCounts) {
  const auto make_fleet = [](const OptContext& ctx) {
    std::vector<Netlist> fleet;
    for (const char* name : {"c17", "c432", "c499", "Adder16"})
      fleet.push_back(netlist::make_benchmark(ctx.lib(), name));
    return fleet;
  };

  OptContext ctx1, ctx4;
  ctx1.set_result_cache(std::make_shared<ResultCache>());
  ctx4.set_result_cache(std::make_shared<ResultCache>());
  std::vector<Netlist> fleet1 = make_fleet(ctx1);
  std::vector<Netlist> fleet4 = make_fleet(ctx4);

  Optimizer opt1(ctx1), opt4(ctx4);
  const auto r1 = opt1.run_many_relative(fleet1, 0.85, 1);
  const auto r4 = opt4.run_many_relative(fleet4, 0.85, 4);

  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    expect_same_report(r1[i], r4[i]);
    expect_same_netlist(fleet1[i], fleet4[i]);
  }

  // A repeated batch is served fully from cache, bit-identically.
  std::vector<Netlist> fleet1b = make_fleet(ctx1);
  const auto r1b = opt1.run_many_relative(fleet1b, 0.85, 4);
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_TRUE(r1b[i].from_cache) << i;
    expect_same_report(r1[i], r1b[i]);
    expect_same_netlist(fleet1[i], fleet1b[i]);
  }
  const ResultCache::Stats stats =
      static_cast<ResultCache*>(ctx1.result_cache())->stats();
  EXPECT_EQ(stats.hits, fleet1.size());
  EXPECT_EQ(stats.misses, fleet1.size());
}

// ---------------------------------------------------------------------------
// PassRegistry + duplicate pass names
// ---------------------------------------------------------------------------

TEST(PassRegistry, BuiltinsRegistered) {
  const std::vector<std::string> expected = {
      "cancel-inverters", "multi-vt", "protocol", "shield", "sweep-dead"};
  EXPECT_EQ(PassRegistry::global().names(), expected);
  EXPECT_TRUE(PassRegistry::global().contains("protocol"));
  EXPECT_FALSE(PassRegistry::global().contains("retime"));
}

TEST(PassRegistry, CreateProducesMatchingPass) {
  const auto pass = PassRegistry::global().create("shield");
  ASSERT_NE(pass, nullptr);
  EXPECT_EQ(pass->name(), "shield");
  EXPECT_THROW(PassRegistry::global().create("nope"), std::invalid_argument);
}

TEST(PassRegistry, MakePipelinePreservesOrder) {
  const api::PassPipeline p = PassRegistry::global().make_pipeline(
      {"cancel-inverters", "sweep-dead", "protocol"});
  const std::vector<std::string> expected = {"cancel-inverters", "sweep-dead",
                                             "protocol"};
  EXPECT_EQ(p.pass_names(), expected);
}

TEST(PassRegistry, DuplicateRegistrationRejected) {
  PassRegistry local;  // not the global one: keep the singleton clean
  EXPECT_THROW(local.register_pass(
                   "shield", [] { return std::make_unique<api::ShieldPass>(); }),
               std::invalid_argument);
  local.register_pass("shield2",
                      [] { return std::make_unique<api::ShieldPass>(); });
  EXPECT_TRUE(local.contains("shield2"));
}

TEST(PassPipelineDuplicates, AddRejectsDuplicateNames) {
  api::PassPipeline p;
  p.emplace<api::ShieldPass>();
  EXPECT_THROW(p.emplace<api::ShieldPass>(), std::invalid_argument);
  try {
    api::PassPipeline q;
    q.emplace<api::ProtocolPass>();
    q.emplace<api::ProtocolPass>();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("protocol"), std::string::npos);
  }
}

TEST(PassRegistry, MakePipelineRejectsDuplicates) {
  EXPECT_THROW(PassRegistry::global().make_pipeline({"shield", "shield"}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SweepSpec validation
// ---------------------------------------------------------------------------

TEST(SweepSpec, DefaultAxesAndJobCount) {
  SweepSpec spec;
  spec.circuits = {"c17", "c432"};
  spec.tc_ratios = {0.8, 0.9, 1.0};
  EXPECT_EQ(spec.n_jobs(), 6u);
  EXPECT_TRUE(spec.validate().empty());
  spec.shield_margins = {1.0, 1.5};
  spec.policies = {service::buffer_policy("standard"),
                   service::buffer_policy("no-shield")};
  EXPECT_EQ(spec.n_jobs(), 24u);
  EXPECT_TRUE(spec.validate().empty());
}

TEST(SweepSpec, ValidationReportsEveryProblem) {
  SweepSpec spec;  // circuits and tc_ratios empty
  spec.tc_ratios = {-1.0};
  spec.shield_margins = {0.0};
  spec.pipeline = {"unknown-pass"};
  spec.base.tc_margin = 5.0;
  const auto problems = spec.validate();
  EXPECT_GE(problems.size(), 5u);
  EXPECT_THROW(spec.ensure_valid(), std::invalid_argument);
}

TEST(SweepSpec, DuplicateAxesRejected) {
  SweepSpec spec;
  spec.circuits = {"c17", "c17"};
  spec.tc_ratios = {0.9};
  spec.policies = {service::buffer_policy("standard"),
                   service::buffer_policy("standard")};
  const auto problems = spec.validate();
  EXPECT_EQ(problems.size(), 2u);
}

TEST(SweepSpec, PolicyOverridesAreValidatedUpFront) {
  // A valid base can still produce an invalid *job* config once a policy's
  // overrides land on it; that must be caught by validate(), not thrown
  // mid-sweep after points were already streamed.
  SweepSpec spec;
  spec.circuits = {"c17"};
  spec.tc_ratios = {0.9};
  spec.base.with_cleanup(false).with_protocol(false);  // shield-only base
  EXPECT_TRUE(spec.base.validate().empty());
  spec.policies = {service::buffer_policy("standard"),
                   service::buffer_policy("no-shield")};
  const auto problems = spec.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("no-shield"), std::string::npos);
  EXPECT_THROW(spec.ensure_valid(), std::invalid_argument);
}

TEST(SweepSpec, NamedPoliciesResolve) {
  EXPECT_TRUE(service::buffer_policy("standard").shielding);
  EXPECT_FALSE(service::buffer_policy("no-shield").shielding);
  EXPECT_TRUE(service::buffer_policy("no-shield").restructuring);
  EXPECT_FALSE(service::buffer_policy("no-restructure").restructuring);
  EXPECT_FALSE(service::buffer_policy("minimal").shielding);
  EXPECT_THROW(service::buffer_policy("bogus"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SweepService
// ---------------------------------------------------------------------------

SweepService::CircuitLoader builtin_loader(const OptContext& ctx) {
  return [&ctx](const std::string& name) {
    return netlist::make_benchmark(ctx.lib(), name);
  };
}

TEST(SweepService, PointsMatchDirectOptimizerRuns) {
  SweepSpec spec;
  spec.circuits = {"c17", "c432"};
  spec.tc_ratios = {0.8, 0.9, 1.1};
  spec.n_threads = 2;

  OptContext ctx;
  SweepService sweeps(ctx);
  const service::SweepReport sweep = sweeps.run(spec, builtin_loader(ctx));
  ASSERT_EQ(sweep.points.size(), 6u);
  EXPECT_EQ(sweep.cache_misses, 6u);
  EXPECT_EQ(sweep.cache_hits, 0u);

  // Every point must be bit-identical to a direct (uncached) run.
  OptContext ctx_direct;
  Optimizer direct(ctx_direct);
  for (const service::SweepPoint& point : sweep.points) {
    Netlist nl = netlist::make_benchmark(ctx_direct.lib(), point.circuit);
    const PipelineReport r = direct.run_relative(nl, point.tc_ratio);
    expect_same_report(r, point.report);
  }
}

TEST(SweepService, RepeatedSweepHitsCacheWithUnchangedResults) {
  SweepSpec spec;
  spec.circuits = {"c17", "Adder16"};
  spec.tc_ratios = {0.85, 1.0};

  OptContext ctx;
  SweepService sweeps(ctx);
  const service::SweepReport first = sweeps.run(spec, builtin_loader(ctx));
  const service::SweepReport second = sweeps.run(spec, builtin_loader(ctx));

  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_EQ(first.cache_misses, 4u);
  EXPECT_EQ(second.cache_hits, 4u);
  EXPECT_EQ(second.cache_misses, 0u);

  ASSERT_EQ(first.points.size(), second.points.size());
  for (std::size_t i = 0; i < first.points.size(); ++i) {
    EXPECT_TRUE(second.points[i].report.from_cache) << i;
    expect_same_report(first.points[i].report, second.points[i].report);
  }
}

TEST(SweepService, StreamsRecordsInJobOrder) {
  SweepSpec spec;
  spec.circuits = {"c17"};
  spec.tc_ratios = {0.9};
  spec.shield_margins = {1.0, 2.0};
  spec.policies = {service::buffer_policy("standard"),
                   service::buffer_policy("minimal")};

  OptContext ctx;
  SweepService sweeps(ctx);
  std::vector<std::string> streamed;
  const service::SweepReport sweep = sweeps.run(
      spec, builtin_loader(ctx), [&](const service::SweepPoint& point) {
        streamed.push_back(point.policy + "/" +
                           util::Json(point.shield_margin).dump());
      });
  const std::vector<std::string> expected = {"standard/1", "standard/2",
                                             "minimal/1", "minimal/2"};
  EXPECT_EQ(streamed, expected);
  ASSERT_EQ(sweep.points.size(), 4u);
  EXPECT_EQ(sweep.points[0].policy, "standard");
  EXPECT_EQ(sweep.points[3].policy, "minimal");
}

TEST(SweepService, DeclarativePipelineViaRegistry) {
  SweepSpec spec;
  spec.circuits = {"c17"};
  spec.tc_ratios = {0.9};
  spec.pipeline = {"cancel-inverters", "protocol"};

  OptContext ctx;
  SweepService sweeps(ctx);
  const service::SweepReport sweep = sweeps.run(spec, builtin_loader(ctx));
  ASSERT_EQ(sweep.points.size(), 1u);
  const std::vector<std::string> expected = {"cancel-inverters", "protocol"};
  ASSERT_EQ(sweep.points[0].report.passes.size(), 2u);
  EXPECT_EQ(sweep.points[0].report.passes[0].pass_name, expected[0]);
  EXPECT_EQ(sweep.points[0].report.passes[1].pass_name, expected[1]);
}

TEST(SweepService, NoCacheMode) {
  SweepSpec spec;
  spec.circuits = {"c17"};
  spec.tc_ratios = {0.9};

  OptContext ctx;
  // A previously installed cache must be removed, not silently kept:
  // otherwise the "uncached" run would replay from it while reporting
  // zero hits/misses.
  SweepService cached(ctx);
  cached.run(spec, builtin_loader(ctx));
  ASSERT_NE(ctx.result_cache(), nullptr);

  SweepService sweeps(ctx, /*use_cache=*/false);
  EXPECT_EQ(sweeps.cache(), nullptr);
  EXPECT_EQ(ctx.result_cache(), nullptr);
  const service::SweepReport sweep = sweeps.run(spec, builtin_loader(ctx));
  ASSERT_EQ(sweep.points.size(), 1u);
  EXPECT_FALSE(sweep.points[0].report.from_cache);
  EXPECT_EQ(sweep.cache_hits, 0u);
  EXPECT_EQ(sweep.cache_misses, 0u);
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(Serialize, ConfigHasEveryKnob) {
  const util::Json j = service::to_json(OptimizerConfig{});
  for (const char* key :
       {"hard_ratio", "weak_ratio", "allow_restructuring", "max_paths",
        "max_rounds", "tc_margin", "pi_slew_ps", "shield_margin",
        "max_shield_buffers", "shield_fanout", "enable_shielding",
        "enable_cleanup", "enable_protocol"})
    EXPECT_NE(j.find(key), nullptr) << key;
  EXPECT_EQ(j.find("hard_ratio")->dump(), "1.2");
}

TEST(Serialize, PipelineReportRoundTripsFields) {
  OptContext ctx;
  Netlist nl = netlist::make_benchmark(ctx.lib(), "c432");
  // Tight enough that the protocol pass optimizes paths (per-path records).
  const PipelineReport r = Optimizer(ctx).run_relative(nl, 0.6);
  const util::Json j = service::to_json(r);

  EXPECT_EQ(j.find("tc_ps")->dump(), util::Json(r.tc_ps).dump());
  EXPECT_EQ(j.find("met")->dump(), r.met ? "true" : "false");
  ASSERT_NE(j.find("passes"), nullptr);
  EXPECT_EQ(j.find("passes")->size(), r.passes.size());
  EXPECT_EQ(j.find("paths_optimized")->dump(),
            util::Json(r.total_paths_optimized()).dump());

  // Run-dependent fields live only in the trailing "measured" object —
  // and vanish entirely when serialized with measured=false.
  const util::Json* measured = j.find("measured");
  ASSERT_NE(measured, nullptr);
  EXPECT_EQ(measured->find("from_cache")->dump(), "false");
  EXPECT_DOUBLE_EQ(measured->find("runtime_ms")->as_number(),
                   r.total_runtime_ms());
  EXPECT_EQ(measured->find("pass_runtimes_ms")->size(), r.passes.size());
  const util::Json bare = service::to_json(r, {.measured = false});
  EXPECT_EQ(bare.find("measured"), nullptr);
  EXPECT_EQ(bare.dump(0).find("runtime_ms"), std::string::npos);

  // The protocol pass entry carries the per-path circuit result,
  // including the round counter of the no-op-spin fix.
  const std::string text = j.dump(0);
  EXPECT_NE(text.find("\"protocol\""), std::string::npos);
  EXPECT_NE(text.find("\"per_path\""), std::string::npos);
  EXPECT_NE(text.find("\"domain\""), std::string::npos);
  EXPECT_NE(text.find("\"rounds\""), std::string::npos);
}

TEST(Serialize, SerializationIsDeterministic) {
  OptContext ctx;
  Netlist nl1 = netlist::make_benchmark(ctx.lib(), "c17");
  Netlist nl2 = netlist::make_benchmark(ctx.lib(), "c17");
  Optimizer opt(ctx);
  // With measurements off the serialization is a pure function of the
  // inputs: exact bytes, no masking.
  const std::string a =
      service::to_json(opt.run_relative(nl1, 0.9), {.measured = false})
          .dump(0);
  const std::string b =
      service::to_json(opt.run_relative(nl2, 0.9), {.measured = false})
          .dump(0);
  EXPECT_EQ(a, b);
}

TEST(Serialize, SweepReportSchema) {
  SweepSpec spec;
  spec.circuits = {"c17"};
  spec.tc_ratios = {0.9};

  OptContext ctx;
  SweepService sweeps(ctx);
  const service::SweepReport sweep = sweeps.run(spec, builtin_loader(ctx));
  const util::Json j = service::to_json(sweep);
  ASSERT_NE(j.find("points"), nullptr);
  EXPECT_EQ(j.find("points")->size(), 1u);
  ASSERT_NE(j.find("cache"), nullptr);
  EXPECT_EQ(j.find("cache")->find("misses")->dump(), "1");
  EXPECT_NE(j.find("wall_ms"), nullptr);

  // measured=false keeps the cache summary but drops the wall clock.
  const util::Json bare = service::to_json(sweep, {.measured = false});
  EXPECT_NE(bare.find("cache"), nullptr);
  EXPECT_EQ(bare.find("wall_ms"), nullptr);

  const util::Json spec_json = service::to_json(spec);
  EXPECT_EQ(spec_json.find("circuits")->size(), 1u);
  EXPECT_NE(spec_json.find("base"), nullptr);
}

// ---------------------------------------------------------------------------
// Delay-model backends through the service layer
// ---------------------------------------------------------------------------

TEST(ResultCache, KeyedByDelayModelBackend) {
  // hash_config must separate closed-form from table — and two tables
  // characterized on different grids from each other — so backends can
  // never replay each other's entries.
  OptContext ctx;
  Netlist nl = netlist::make_benchmark(ctx.lib(), "c17");
  const api::PassPipeline pipeline = api::PassPipeline::standard({});

  Optimizer cf_opt(ctx, OptimizerConfig{});
  const std::uint64_t h_closed =
      ResultCache::hash_config(ctx, OptimizerConfig{}, pipeline);

  Optimizer tbl_opt(ctx, OptimizerConfig{}.with_delay_model("table"));
  const std::uint64_t h_table =
      ResultCache::hash_config(ctx, OptimizerConfig{}, pipeline);
  EXPECT_NE(h_closed, h_table);

  timing::TableModelOptions coarse;
  coarse.slew_grid_ps = {10.0, 100.0};
  coarse.load_grid = {1.0, 10.0};
  Optimizer coarse_opt(ctx, OptimizerConfig{}
                                .with_delay_model("table")
                                .with_table_model(coarse));
  const std::uint64_t h_coarse =
      ResultCache::hash_config(ctx, OptimizerConfig{}, pipeline);
  EXPECT_NE(h_table, h_coarse);
  EXPECT_NE(h_closed, h_coarse);
}

TEST(ResultCache, BackendsNeverAliasUnderMixedRepeats) {
  // A mixed-backend repeat sweep: every backend's first pass must miss
  // (nothing replayed across backends), every repeat must hit within its
  // own backend, and the replays must be bit-identical per backend.
  OptContext ctx;
  auto cache = std::make_shared<ResultCache>();
  ctx.set_result_cache(cache);

  auto run_once = [&](const std::string& model) {
    Optimizer opt(ctx, OptimizerConfig{}.with_delay_model(model));
    Netlist nl = netlist::make_benchmark(ctx.lib(), "c432");
    return opt.run_relative(nl, 0.85);
  };

  const PipelineReport cf1 = run_once("closed-form");
  EXPECT_EQ(cache->misses(), 1u);
  const PipelineReport tb1 = run_once("table");
  EXPECT_EQ(cache->misses(), 2u);
  EXPECT_EQ(cache->hits(), 0u) << "table run replayed a closed-form entry";

  const PipelineReport cf2 = run_once("closed-form");
  const PipelineReport tb2 = run_once("table");
  EXPECT_EQ(cache->hits(), 2u);
  EXPECT_EQ(cache->misses(), 2u);
  EXPECT_TRUE(cf2.from_cache);
  EXPECT_TRUE(tb2.from_cache);
  EXPECT_EQ(cf1.delay_model, "closed-form");
  EXPECT_EQ(tb1.delay_model, "table");
  EXPECT_EQ(cf1.final_delay_ps, cf2.final_delay_ps);
  EXPECT_EQ(tb1.final_delay_ps, tb2.final_delay_ps);
}

TEST(SweepService, MixedBackendSweepKeepsBackendsApart) {
  OptContext ctx;
  SweepService sweeps(ctx);

  SweepSpec spec;
  spec.circuits = {"c17", "c432"};
  spec.tc_ratios = {0.85, 1.0};
  spec.n_threads = 1;

  auto run_model = [&](const std::string& model) {
    SweepSpec s = spec;
    s.base.delay_model = model;
    return sweeps.run(s, builtin_loader(ctx));
  };

  const service::SweepReport cf = run_model("closed-form");
  EXPECT_EQ(cf.cache_hits, 0u);
  EXPECT_EQ(cf.cache_misses, spec.n_jobs());

  const service::SweepReport tb = run_model("table");
  EXPECT_EQ(tb.cache_hits, 0u) << "table sweep aliased closed-form entries";
  EXPECT_EQ(tb.cache_misses, spec.n_jobs());
  for (const service::SweepPoint& p : tb.points)
    EXPECT_EQ(p.report.delay_model, "table");

  const service::SweepReport cf2 = run_model("closed-form");
  const service::SweepReport tb2 = run_model("table");
  EXPECT_EQ(cf2.cache_hits, spec.n_jobs());
  EXPECT_EQ(tb2.cache_hits, spec.n_jobs());
  for (std::size_t i = 0; i < tb.points.size(); ++i) {
    EXPECT_EQ(tb.points[i].report.final_delay_ps,
              tb2.points[i].report.final_delay_ps);
    EXPECT_EQ(cf.points[i].report.final_delay_ps,
              cf2.points[i].report.final_delay_ps);
  }
}

TEST(Serialize, ReportsCarryBackendIdentity) {
  OptContext ctx;
  Netlist nl = netlist::make_benchmark(ctx.lib(), "c17");
  Optimizer opt(ctx, OptimizerConfig{}.with_delay_model("table"));
  const util::Json j = service::to_json(opt.run_relative(nl, 0.9));
  ASSERT_NE(j.find("delay_model"), nullptr);
  EXPECT_EQ(j.find("delay_model")->dump(), "\"table\"");

  // delay_model and table_model are archived unconditionally: a
  // closed-form base can still carry a custom grid that a
  // --delay-model table run uses, and the dumped spec must reproduce it.
  for (const char* model : {"closed-form", "table"}) {
    const util::Json cfg_json =
        service::to_json(OptimizerConfig{}.with_delay_model(model));
    ASSERT_NE(cfg_json.find("delay_model"), nullptr) << model;
    ASSERT_NE(cfg_json.find("table_model"), nullptr) << model;
  }
}

// ---------------------------------------------------------------------------
// Spec-file input (sweep_spec_from_json / config_from_json)
// ---------------------------------------------------------------------------

TEST(SpecFromJson, FullSpecRoundTrips) {
  SweepSpec spec;
  spec.circuits = {"c17", "c432"};
  spec.tc_ratios = {0.8, 0.95};
  spec.shield_margins = {1.0, 1.5};
  spec.policies = {service::buffer_policy("standard"),
                   service::buffer_policy("no-shield")};
  spec.pipeline = {"cancel-inverters", "protocol"};
  spec.n_threads = 2;
  spec.base.with_delay_model("table").with_max_rounds(4);

  const SweepSpec parsed =
      service::sweep_spec_from_json(service::to_json(spec));
  EXPECT_EQ(parsed.circuits, spec.circuits);
  EXPECT_EQ(parsed.tc_ratios, spec.tc_ratios);
  EXPECT_EQ(parsed.shield_margins, spec.shield_margins);
  ASSERT_EQ(parsed.policies.size(), 2u);
  EXPECT_EQ(parsed.policies[1].name, "no-shield");
  EXPECT_FALSE(parsed.policies[1].shielding);
  EXPECT_EQ(parsed.pipeline, spec.pipeline);
  EXPECT_EQ(parsed.n_threads, 2u);
  EXPECT_EQ(parsed.base.delay_model, "table");
  EXPECT_EQ(parsed.base.max_rounds, 4);
  EXPECT_EQ(parsed.base.table_model.slew_grid_ps,
            spec.base.table_model.slew_grid_ps);
  EXPECT_TRUE(parsed.validate().empty());
}

TEST(SpecFromJson, ExplicitlyEmptyPoliciesRejectedLikeOtherAxes) {
  // "policies": [] must flow into SweepSpec::validate ("policies is
  // empty"), not silently fall back to the default standard policy.
  const util::Json j = util::Json::parse(
      R"({"circuits": ["c17"], "tc_ratios": [0.9], "policies": []})");
  const SweepSpec spec = service::sweep_spec_from_json(j);
  EXPECT_TRUE(spec.policies.empty());
  EXPECT_THROW(spec.ensure_valid(), std::invalid_argument);
}

TEST(SpecFromJson, PolicyNamesResolve) {
  const util::Json j = util::Json::parse(
      R"({"circuits": ["c17"], "tc_ratios": [0.9],
          "policies": ["minimal", "standard"]})");
  const SweepSpec spec = service::sweep_spec_from_json(j);
  ASSERT_EQ(spec.policies.size(), 2u);
  EXPECT_EQ(spec.policies[0].name, "minimal");
  EXPECT_FALSE(spec.policies[0].restructuring);
}

TEST(SpecFromJson, DiagnosticsListEveryProblem) {
  const util::Json j = util::Json::parse(
      R"({"circuits": [1], "tc_ratio": [0.9],
          "base": {"max_paths": "lots", "mystery": true}})");
  try {
    service::sweep_spec_from_json(j);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'circuits' must contain only strings"),
              std::string::npos);
    EXPECT_NE(msg.find("unknown sweep-spec key 'tc_ratio'"),
              std::string::npos);
    EXPECT_NE(msg.find("'max_paths' must be a number"), std::string::npos);
    EXPECT_NE(msg.find("unknown config key 'mystery'"), std::string::npos);
  }
}

TEST(SpecFromJson, OutOfRangeCountsDiagnosedNotCast) {
  // Counts beyond the integer range must produce diagnostics, never reach
  // the float->size_t cast (UB on out-of-range input from untrusted files).
  for (const char* bad : {"1e300", "-3", "2.5", "1e20"}) {
    const util::Json j = util::Json::parse(
        std::string(R"({"circuits": ["c17"], "tc_ratios": [0.9], )") +
        R"("n_threads": )" + bad + "}");
    EXPECT_THROW(service::sweep_spec_from_json(j), std::invalid_argument)
        << bad;
  }
  // max_rounds additionally narrows to int: values past INT_MAX must be
  // rejected, not wrapped into a wrong-but-positive round count.
  const util::Json j = util::Json::parse(
      R"({"circuits": ["c17"], "tc_ratios": [0.9],
          "base": {"max_rounds": 4294967297}})");
  EXPECT_THROW(service::sweep_spec_from_json(j), std::invalid_argument);
}

TEST(SpecFromJson, ParsedSpecRunsEndToEnd) {
  const util::Json j = util::Json::parse(
      R"({"circuits": ["c17"], "tc_ratios": [0.9],
          "base": {"delay_model": "table"}})");
  SweepSpec spec = service::sweep_spec_from_json(j);
  OptContext ctx;
  SweepService sweeps(ctx);
  const service::SweepReport report = sweeps.run(spec, builtin_loader(ctx));
  ASSERT_EQ(report.points.size(), 1u);
  EXPECT_EQ(report.points[0].report.delay_model, "table");
}

}  // namespace
