// Build-system smoke test: every library links and the basic objects
// construct.

#include <gtest/gtest.h>

#include "pops/core/protocol.hpp"
#include "pops/liberty/library.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/process/technology.hpp"
#include "pops/timing/delay_model.hpp"

TEST(Smoke, LibraryConstructs) {
  const pops::liberty::Library lib(pops::process::Technology::cmos025());
  EXPECT_GT(lib.cref_ff(), 0.0);
  EXPECT_EQ(lib.cells().size(), pops::liberty::kCellKindCount);
}

TEST(Smoke, C17Loads) {
  const pops::liberty::Library lib(pops::process::Technology::cmos025());
  const auto nl = pops::netlist::make_c17(lib);
  EXPECT_EQ(nl.stats().n_gates, 6u);
  EXPECT_EQ(nl.stats().n_inputs, 5u);
}
