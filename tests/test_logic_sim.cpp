// Unit tests for the zero-delay logic simulator: truth tables, functional
// equivalence checking and switching-activity estimation.

#include <gtest/gtest.h>

#include "pops/liberty/library.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/netlist/logic_sim.hpp"
#include "pops/process/technology.hpp"
#include "pops/util/rng.hpp"

namespace {

using namespace pops::netlist;
using pops::liberty::CellKind;
using pops::liberty::Library;
using pops::process::Technology;
using pops::util::Rng;

class LogicSimTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
};

TEST_F(LogicSimTest, C17KnownVectors) {
  const Netlist nl = make_c17(lib);
  const LogicSimulator sim(nl);
  // c17: 22 = NAND(10,16), 23 = NAND(16,19) with
  // 10=NAND(1,3), 11=NAND(3,6), 16=NAND(2,11), 19=NAND(11,7).
  // All-zero input: 10=1, 11=1, 16=1, 19=1 -> 22=0, 23=0.
  EXPECT_EQ(sim.eval_outputs({false, false, false, false, false}),
            (std::vector<bool>{false, false}));
  // All-one input: 10=0, 11=0, 16=1, 19=1 -> 22=1, 23=0.
  EXPECT_EQ(sim.eval_outputs({true, true, true, true, true}),
            (std::vector<bool>{true, false}));
}

TEST_F(LogicSimTest, PiCountMismatchThrows) {
  const Netlist nl = make_c17(lib);
  const LogicSimulator sim(nl);
  EXPECT_THROW(sim.eval_all({true}), std::invalid_argument);
}

TEST_F(LogicSimTest, EquivalentToItself) {
  const Netlist a = make_c17(lib);
  const Netlist b = make_c17(lib);
  Rng rng(1);
  EXPECT_TRUE(equivalent(a, b, rng));
}

TEST_F(LogicSimTest, DetectsFunctionalChange) {
  const Netlist a = make_c17(lib);
  Netlist b = make_c17(lib);
  // Tamper: swap a NAND for a NOR.
  const NodeId g = b.find("22");
  ASSERT_NE(g, kNoNode);
  b.replace_cell(g, CellKind::Nor2);
  Rng rng(1);
  EXPECT_FALSE(equivalent(a, b, rng));
}

TEST_F(LogicSimTest, EquivalenceIsSizeBlind) {
  const Netlist a = make_c17(lib);
  Netlist b = make_c17(lib);
  for (NodeId g : b.gates()) b.set_drive(g, 5.0);
  Rng rng(2);
  EXPECT_TRUE(equivalent(a, b, rng));
}

TEST_F(LogicSimTest, MismatchedInterfaceThrows) {
  const Netlist a = make_c17(lib);
  Netlist b(lib);
  b.add_input("1");
  const NodeId g = b.add_gate(CellKind::Inv, "22", {b.find("1")});
  b.mark_output(g, 1.0);
  Rng rng(3);
  EXPECT_THROW(equivalent(a, b, rng), std::invalid_argument);
}

TEST_F(LogicSimTest, ActivityBounds) {
  const Netlist nl = make_c17(lib);
  Rng rng(4);
  const ActivityReport rep = estimate_activity(nl, rng, 2000);
  ASSERT_EQ(rep.toggle_rate.size(), nl.size());
  for (double r : rep.toggle_rate) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
  // PIs toggle at ~1/2 under uniform random vectors.
  for (NodeId pi : nl.inputs())
    EXPECT_NEAR(rep.toggle_rate[static_cast<std::size_t>(pi)], 0.5, 0.08);
  EXPECT_GT(rep.switched_cap_ff_per_vec, 0.0);
}

TEST_F(LogicSimTest, ActivityNeedsTwoVectors) {
  const Netlist nl = make_c17(lib);
  Rng rng(5);
  EXPECT_THROW(estimate_activity(nl, rng, 1), std::invalid_argument);
}

TEST_F(LogicSimTest, InverterChainParity) {
  // A chain of N inverters computes parity of N: output = in XOR (N odd).
  for (int n : {1, 2, 5, 8}) {
    std::vector<CellKind> kinds(static_cast<std::size_t>(n), CellKind::Inv);
    const Netlist nl = make_chain(lib, kinds, 5.0, "chain" + std::to_string(n));
    const LogicSimulator sim(nl);
    const bool out_for_true = sim.eval_outputs({true}).front();
    EXPECT_EQ(out_for_true, n % 2 == 0);
  }
}

}  // namespace
