// pops::fabric — the distributed sweep fabric. The load-bearing contract
// is byte fidelity: a coordinator fanning a spec across N workers must
// merge their streams into EXACTLY the bytes a single-daemon (or
// in-process) run of the same spec produces — including when a worker is
// dead on arrival or dies mid-sweep and its points fail over to the
// survivors. Plus the routing primitives (point expansion order,
// single-point sub-specs, consistent-hash ring) and the transport
// taxonomy (ConnectionError vs server error), the server's connection
// cap, and the per-selector context pool.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "pops/api/api.hpp"
#include "pops/fabric/context_pool.hpp"
#include "pops/fabric/coordinator.hpp"
#include "pops/fabric/shard.hpp"
#include "pops/net/client.hpp"
#include "pops/net/server.hpp"
#include "pops/net/socket.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/service/serialize.hpp"
#include "pops/service/sweep.hpp"
#include "pops/util/hash.hpp"

namespace {

using namespace pops;
using fabric::FabricCoordinator;
using fabric::FabricOptions;
using fabric::FabricReport;
using fabric::HashRing;
using fabric::WorkerAddress;
using net::SweepServer;
using service::SweepSpec;

SweepSpec fleet_spec() {
  SweepSpec spec;
  spec.circuits = {"c17", "c432"};
  spec.tc_ratios = {0.85, 0.95};
  spec.shield_margins = {0.05, 0.1};
  spec.n_threads = 1;
  return spec;
}

std::vector<std::string> in_process_records(const SweepSpec& spec) {
  api::OptContext ctx;
  service::SweepService sweeps(ctx);
  std::vector<std::string> records;
  sweeps.run(
      spec,
      [&ctx](const std::string& name) {
        return netlist::make_benchmark(ctx.lib(), name);
      },
      [&records](const service::SweepPoint& point) {
        records.push_back(
            service::to_json(point, {.measured = false}).dump(0));
      });
  return records;
}

/// Points each ring member would own for `spec` — the test-side replica
/// of the coordinator's initial shard assignment (content-pure hashes:
/// any context with the default characterization predicts it).
std::vector<std::size_t> predicted_shard_counts(
    const SweepSpec& spec, const std::vector<std::string>& labels) {
  api::OptContext ctx;
  fabric::ShardKeyer keyer(ctx, spec, [&ctx](const std::string& name) {
    return netlist::make_benchmark(ctx.lib(), name);
  });
  HashRing ring(labels);
  std::vector<std::size_t> counts(labels.size(), 0);
  for (const fabric::PointSpec& pt : fabric::expand_points(spec))
    ++counts[ring.owner(keyer.key_hash(pt))];
  return counts;
}

/// Bind a loopback listener whose "host:port" label is predicted to own
/// at least one of `spec`'s points opposite `live_label` — a small grid
/// on a 2-member ring can legitimately shard entirely onto one member,
/// which would make a failover test vacuous. A handful of candidate
/// ports makes an empty shard astronomically unlikely.
net::TcpListener bind_point_owning_listener(const SweepSpec& spec,
                                            const std::string& live_label) {
  std::vector<net::TcpListener> rejected;
  for (int i = 0; i < 8; ++i) {
    net::TcpListener probe = net::TcpListener::bind("127.0.0.1", 0);
    const std::string label = "127.0.0.1:" + std::to_string(probe.port());
    if (predicted_shard_counts(spec, {live_label, label})[1] > 0) {
      for (net::TcpListener& r : rejected) r.close();
      return probe;
    }
    rejected.push_back(std::move(probe));  // hold: the next bind must differ
  }
  for (net::TcpListener& r : rejected) r.close();
  throw std::runtime_error("no candidate port owned any point");
}

FabricOptions fast_failover_options() {
  FabricOptions opt;
  opt.record_runtimes = false;
  opt.connect_timeout_ms = 1000;
  opt.max_attempts = 2;
  opt.retry_backoff_ms = 10;
  return opt;
}

TEST(HashRing, EveryMemberOwnsKeysAndRemapIsBounded) {
  const std::vector<std::string> three = {"w0:1", "w1:1", "w2:1"};
  HashRing ring3(three);
  std::vector<std::string> four = three;
  four.push_back("w3:1");
  HashRing ring4(four);

  constexpr std::size_t kKeys = 2000;
  std::vector<std::size_t> owned(4, 0);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    util::Fnv1a h;
    h.u64(i);
    const std::size_t before = ring3.owner(h.h);
    const std::size_t after = ring4.owner(h.h);
    ++owned[after];
    if (four[after] != three[before]) {
      // A key only ever moves TO the added member, never between
      // survivors — the consistent-hash guarantee failover relies on.
      EXPECT_EQ(after, 3u) << "key " << i << " moved between survivors";
      ++moved;
    }
  }
  for (std::size_t w = 0; w < 4; ++w)
    EXPECT_GT(owned[w], 0u) << "member " << w << " owns nothing";
  // ~1/4 of the key space moves to the new member; allow generous slack
  // for vnode placement variance, but far below a modulo-hash reshuffle
  // (which would move ~3/4).
  EXPECT_GT(moved, kKeys / 16);
  EXPECT_LT(moved, kKeys / 2);

  EXPECT_THROW(HashRing({"dup", "dup"}), std::invalid_argument);
  EXPECT_THROW(HashRing({""}), std::invalid_argument);
  EXPECT_THROW(HashRing({}).owner(7), std::logic_error);
}

TEST(Shard, ExpandPointsMatchesJobOrderAndSinglePointSpecsAreByteExact) {
  const SweepSpec spec = fleet_spec();
  const std::vector<fabric::PointSpec> points = fabric::expand_points(spec);
  ASSERT_EQ(points.size(), spec.n_jobs());

  // Job order: margins outer, ratios next, circuits innermost (one
  // policy here) — the order SweepService::run streams records.
  std::size_t i = 0;
  for (double margin : spec.shield_margins)
    for (double ratio : spec.tc_ratios)
      for (const std::string& circuit : spec.circuits) {
        EXPECT_EQ(points[i].index, i);
        EXPECT_EQ(points[i].circuit, circuit);
        EXPECT_EQ(points[i].tc_ratio, ratio);
        EXPECT_EQ(points[i].shield_margin, margin);
        ++i;
      }

  // Each single-point sub-spec, run in isolation, reproduces the exact
  // bytes of its record inside the full sweep — the property the whole
  // merge correctness rests on.
  const std::vector<std::string> full = in_process_records(spec);
  ASSERT_EQ(full.size(), points.size());
  for (const std::size_t idx : {std::size_t{0}, points.size() - 1}) {
    const SweepSpec sub = fabric::single_point_spec(spec, points[idx]);
    EXPECT_EQ(sub.n_jobs(), 1u);
    const std::vector<std::string> one = in_process_records(sub);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], full[idx]) << "point " << idx;
  }
}

TEST(Fabric, MergedStreamIsByteIdenticalToInProcessRun) {
  const SweepSpec spec = fleet_spec();
  const std::vector<std::string> expected = in_process_records(spec);

  SweepServer w0, w1;
  w0.start();
  w1.start();
  FabricOptions opt;
  opt.record_runtimes = false;
  FabricCoordinator coordinator(
      {{"127.0.0.1", w0.port()}, {"127.0.0.1", w1.port()}}, opt);

  std::vector<std::string> merged;
  const FabricReport report = coordinator.run(
      spec, {}, [&merged](const std::string& raw) { merged.push_back(raw); });

  EXPECT_EQ(report.points, expected.size());
  EXPECT_EQ(report.failovers, 0u);
  EXPECT_TRUE(report.dead_workers.empty());
  std::size_t completed = 0;
  for (const auto& [label, n] : report.points_per_worker) completed += n;
  EXPECT_EQ(completed, expected.size());

  ASSERT_EQ(merged.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(merged[i], expected[i]) << i;
  w0.stop();
  w1.stop();
}

TEST(Fabric, DeadOnArrivalWorkerFailsOverByteIdentically) {
  const SweepSpec spec = fleet_spec();
  const std::vector<std::string> expected = in_process_records(spec);

  SweepServer live;
  live.start();
  const WorkerAddress live_addr{"127.0.0.1", live.port()};
  // A port that was bound and released: connects are refused.
  net::TcpListener probe = bind_point_owning_listener(spec, live_addr.label());
  const WorkerAddress dead_addr{"127.0.0.1", probe.port()};
  probe.close();
  const std::vector<std::size_t> counts =
      predicted_shard_counts(spec, {live_addr.label(), dead_addr.label()});

  FabricCoordinator coordinator({live_addr, dead_addr},
                                fast_failover_options());
  std::vector<std::string> merged;
  const FabricReport report = coordinator.run(
      spec, {}, [&merged](const std::string& raw) { merged.push_back(raw); });

  // The dead worker's points re-shard onto the survivor and the merged
  // stream is still exactly the single-run bytes.
  ASSERT_EQ(report.dead_workers.size(), 1u);
  EXPECT_EQ(report.dead_workers[0], dead_addr.label());
  EXPECT_GE(report.failovers, counts[1]);
  EXPECT_EQ(report.points_per_worker.at(live_addr.label()), expected.size());
  ASSERT_EQ(merged.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(merged[i], expected[i]) << i;
  live.stop();
}

TEST(Fabric, WorkerDyingMidSweepFailsOverByteIdentically) {
  const SweepSpec spec = fleet_spec();
  const std::vector<std::string> expected = in_process_records(spec);
  const FabricOptions opt = fast_failover_options();

  SweepServer live;
  live.start();
  // A worker that accepts, then drops every connection without replying:
  // the dispatch is already in flight when the transport dies, so the
  // failure is a mid-sweep ConnectionError, not a refused connect.
  const WorkerAddress live_addr{"127.0.0.1", live.port()};
  net::TcpListener flaky = bind_point_owning_listener(spec, live_addr.label());
  const WorkerAddress flaky_addr{"127.0.0.1", flaky.port()};
  const std::vector<std::size_t> counts =
      predicted_shard_counts(spec, {live_addr.label(), flaky_addr.label()});

  // The coordinator reconnects per attempt and declares the worker dead
  // after max_attempts transport failures on one point — so the flaky
  // worker sees exactly max_attempts connections.
  std::thread dropper([&flaky, &opt] {
    // pops-lint: allow(raw-thread)
    for (int i = 0; i < opt.max_attempts; ++i) {
      net::TcpStream peer{flaky.accept()};
      std::string line;
      peer.read_line(line);  // let the dispatch land, then hang up
    }
  });

  FabricCoordinator coordinator({live_addr, flaky_addr}, opt);
  std::vector<std::string> merged;
  const FabricReport report = coordinator.run(
      spec, {}, [&merged](const std::string& raw) { merged.push_back(raw); });
  dropper.join();
  flaky.close();

  ASSERT_EQ(report.dead_workers.size(), 1u);
  EXPECT_EQ(report.dead_workers[0], flaky_addr.label());
  EXPECT_GE(report.failovers, counts[1]);
  ASSERT_EQ(merged.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(merged[i], expected[i]) << i;
  live.stop();
}

TEST(Fabric, AllWorkersDeadFailsTheRun) {
  std::uint16_t dead_port;
  {
    net::TcpListener probe = net::TcpListener::bind("127.0.0.1", 0);
    dead_port = probe.port();
    probe.close();
  }
  SweepSpec spec;
  spec.circuits = {"c17"};
  spec.tc_ratios = {0.9};
  FabricOptions opt = fast_failover_options();
  opt.connect_timeout_ms = 200;
  FabricCoordinator coordinator({{"127.0.0.1", dead_port}}, opt);
  EXPECT_THROW(coordinator.run(spec), std::runtime_error);

  EXPECT_THROW(FabricCoordinator({}), std::invalid_argument);
  EXPECT_THROW(FabricCoordinator({{"127.0.0.1", 1}, {"127.0.0.1", 1}}),
               std::invalid_argument);
}

TEST(SweepServer, ConnectionCapRejectsWithErrorEventThenRecovers) {
  net::SweepServerOptions opt;
  opt.max_connections = 1;
  SweepServer server(opt);
  server.start();

  // First connection occupies the only slot (ping proves it is served).
  auto held = std::make_unique<net::SweepClient>("127.0.0.1", server.port());
  EXPECT_EQ(net::event_name(held->ping()), "pong");

  // Second connection: one JSON error line, then EOF — never queued.
  net::TcpStream over = net::TcpStream::connect("127.0.0.1", server.port());
  std::string line;
  ASSERT_TRUE(over.read_line(line));
  const util::Json reply = util::Json::parse(line);
  EXPECT_EQ(net::event_name(reply), "error");
  EXPECT_NE(reply.find("message")->as_string().find("capacity"),
            std::string::npos);
  EXPECT_FALSE(over.read_line(line));
  EXPECT_GE(server.stats().rejected, 1u);

  // Releasing the held slot frees capacity for the next connection.
  held.reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  net::SweepClient next("127.0.0.1", server.port());
  EXPECT_EQ(net::event_name(next.ping()), "pong");
  server.stop();
}

TEST(SweepClient, TransportFailuresAreConnectionErrors) {
  // Refused connect (bound-then-released port).
  std::uint16_t dead_port;
  {
    net::TcpListener probe = net::TcpListener::bind("127.0.0.1", 0);
    dead_port = probe.port();
    probe.close();
  }
  EXPECT_THROW(net::SweepClient("127.0.0.1", dead_port),
               net::ConnectionError);

  // A peer that accepts but never replies: the read deadline fires as a
  // ConnectionError (retryable), not a generic runtime_error.
  net::TcpListener mute = net::TcpListener::bind("127.0.0.1", 0);
  net::ClientConfig cfg;
  cfg.connect_timeout_ms = 1000;
  cfg.read_timeout_ms = 100;
  net::SweepClient client("127.0.0.1", mute.port(), cfg);
  try {
    client.ping();
    FAIL() << "ping against a mute peer must time out";
  } catch (const net::ConnectionError& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos);
  }
  mute.close();

  // A server-side error event stays a plain runtime_error — the
  // fail-fast half of the taxonomy (never retried, never failed over).
  SweepServer server;
  server.start();
  net::SweepClient ok("127.0.0.1", server.port());
  SweepSpec bad;  // no circuits
  try {
    ok.submit(bad);
    FAIL() << "invalid spec must surface the server error";
  } catch (const net::ConnectionError&) {
    FAIL() << "server-reported errors must not be ConnectionError";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("sweep failed"), std::string::npos);
  }
  server.stop();
}

TEST(ContextPool, OneEntryPerSelectorSharedCache) {
  auto cache = std::make_shared<service::ResultCache>();
  std::vector<std::string> created;
  fabric::ContextPool pool(
      cache, [&created](const std::string& selector, api::OptContext&) {
        created.push_back(selector);
      });

  fabric::ContextPool::Entry& a = pool.get("closed-form");
  fabric::ContextPool::Entry& b = pool.get("closed-form");
  EXPECT_EQ(&a, &b);  // one context per selector, stable address
  fabric::ContextPool::Entry& c = pool.get("table");
  EXPECT_NE(&a, &c);
  EXPECT_EQ(pool.size(), 2u);
  ASSERT_EQ(created.size(), 2u);
  EXPECT_EQ(created[0], "closed-form");
  EXPECT_EQ(created[1], "table");

  // Every pool member shares the one cache (the journal's invariant).
  EXPECT_EQ(pool.cache().get(), cache.get());
  EXPECT_EQ(&pool.default_entry(),
            &pool.get(api::OptimizerConfig{}.delay_model_selector()));
}

}  // namespace
