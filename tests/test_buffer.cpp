// Tests for the Flimit metric and buffer insertion (paper §4.1):
// the Table 2 ordering, critical-node identification, local insertion
// behaviour and the Table 3 property that buffering can lower Tmin.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "pops/core/buffer.hpp"
#include "pops/liberty/library.hpp"
#include "pops/process/technology.hpp"

namespace {

using namespace pops::core;
using namespace pops::timing;
using pops::liberty::CellKind;
using pops::liberty::Library;
using pops::process::Technology;

class BufferTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
  ClosedFormModel dm{lib};
  FlimitTable table;

  /// An inverter chain with a grossly overloaded middle node.
  BoundedPath overloaded_path(double off_x = 60.0) const {
    std::vector<PathStage> stages(7);
    for (auto& st : stages) st.kind = CellKind::Inv;
    stages[3].off_path_ff = off_x * lib.cref_ff();
    return BoundedPath(lib, stages, 2.0 * lib.cref_ff(), 8.0 * lib.cref_ff(),
                       Edge::Rise, dm.default_input_slew_ps());
  }

  /// A clean, lightly loaded chain.
  BoundedPath clean_path() const {
    std::vector<PathStage> stages(7);
    for (auto& st : stages) st.kind = CellKind::Inv;
    return BoundedPath(lib, stages, 2.0 * lib.cref_ff(), 6.0 * lib.cref_ff(),
                       Edge::Rise, dm.default_input_slew_ps());
  }
};

TEST_F(BufferTest, Table2OrderingReproduced) {
  // Paper Table 2 (driven by an inverter): inv 5.7 > nand2 4.9 >
  // nand3 4.5 > nor2 3.8 > nor3 2.7. We require the ordering and the
  // 2..9 magnitude window.
  const double f_inv = flimit(dm, CellKind::Inv, CellKind::Inv);
  const double f_nand2 = flimit(dm, CellKind::Inv, CellKind::Nand2);
  const double f_nand3 = flimit(dm, CellKind::Inv, CellKind::Nand3);
  const double f_nor2 = flimit(dm, CellKind::Inv, CellKind::Nor2);
  const double f_nor3 = flimit(dm, CellKind::Inv, CellKind::Nor3);

  EXPECT_GT(f_inv, f_nand2);
  EXPECT_GT(f_nand2, f_nand3);
  EXPECT_GT(f_nand3, f_nor2);
  EXPECT_GT(f_nor2, f_nor3);

  for (double f : {f_inv, f_nand2, f_nand3, f_nor2, f_nor3}) {
    EXPECT_GT(f, 2.0);
    EXPECT_LT(f, 9.0);
  }
}

TEST_F(BufferTest, WeakestGateHasLowestLimit) {
  // "greater is the logical weight of the gate, lower is the limit".
  EXPECT_LT(flimit(dm, CellKind::Inv, CellKind::Nor4),
            flimit(dm, CellKind::Inv, CellKind::Nor3));
  EXPECT_LT(flimit(dm, CellKind::Inv, CellKind::Nand4),
            flimit(dm, CellKind::Inv, CellKind::Nand3));
}

TEST_F(BufferTest, TableCachesValues) {
  const double first = table.get(dm, CellKind::Inv, CellKind::Nor3);
  const double second = table.get(dm, CellKind::Inv, CellKind::Nor3);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_NEAR(first, flimit(dm, CellKind::Inv, CellKind::Nor3), 1e-9);
}

TEST_F(BufferTest, CriticalNodesFlagOverload) {
  const BoundedPath p = overloaded_path();
  const auto crit = critical_nodes(p, dm, table);
  // The overloaded stage 3 must be flagged (its load/cin >> Flimit at the
  // minimum drive it starts with).
  EXPECT_NE(std::find(crit.begin(), crit.end(), 3u), crit.end());
}

TEST_F(BufferTest, CleanPathHasNoCriticalNodes) {
  BoundedPath p = clean_path();
  // At a reasonable sizing there is nothing to buffer.
  for (std::size_t i = 1; i < p.size(); ++i) p.set_cin(i, 3.0 * lib.cref_ff());
  const auto crit = critical_nodes(p, dm, table);
  EXPECT_TRUE(crit.empty());
}

TEST_F(BufferTest, LocalInsertionReducesDelayOnOverloadedPath) {
  const BoundedPath p = overloaded_path();
  const double before = p.delay_ps(dm);
  const BufferInsertionResult r = insert_buffers_local(p, dm, table);
  EXPECT_GE(r.buffers_inserted, 1u);
  EXPECT_LT(r.delay_ps, before);
  // Only buffers were touched: every original stage keeps its CIN.
  std::size_t orig = 0;
  for (std::size_t i = 0; i < r.path.size(); ++i) {
    if (r.path.stage(i).kind == CellKind::Buf) continue;
    EXPECT_NEAR(r.path.cin(i), p.cin(orig), 1e-9) << i;
    ++orig;
  }
}

TEST_F(BufferTest, LocalInsertionSkipsCleanPath) {
  BoundedPath p = clean_path();
  for (std::size_t i = 1; i < p.size(); ++i) p.set_cin(i, 3.0 * lib.cref_ff());
  const BufferInsertionResult r = insert_buffers_local(p, dm, table);
  EXPECT_EQ(r.buffers_inserted, 0u);
  EXPECT_EQ(r.path.size(), p.size());
}

TEST_F(BufferTest, BufferedTminBeatsSizingOnlyTmin) {
  // Table 3's claim: on paths with overloaded nodes, buffer insertion
  // lowers the reachable minimum delay. The overload must survive the
  // sizing-only Tmin (drive-clamped), so it is made heavy.
  const BoundedPath p = overloaded_path(160.0);
  const BoundedPath at_tmin = size_for_tmin(p, dm);
  const double tmin_sizing = at_tmin.delay_ps(dm);
  const BufferInsertionResult r = min_delay_with_buffers(p, dm, table);
  EXPECT_GE(r.buffers_inserted, 1u);
  EXPECT_LT(r.delay_ps, tmin_sizing);
  // Gains in the paper are 2-22%; ours should be in a comparable band.
  const double gain = (tmin_sizing - r.delay_ps) / tmin_sizing;
  EXPECT_GT(gain, 0.005);
  EXPECT_LT(gain, 0.60);
}

TEST_F(BufferTest, NoBuffersMeansUnchangedTmin) {
  BoundedPath p = clean_path();
  const BoundedPath at_tmin = size_for_tmin(p, dm);
  const BufferInsertionResult r = min_delay_with_buffers(p, dm, table);
  if (r.buffers_inserted == 0) {
    EXPECT_NEAR(r.delay_ps, at_tmin.delay_ps(dm), 1e-6 * r.delay_ps);
  } else {
    // If anything was inserted it must not have hurt.
    EXPECT_LE(r.delay_ps, at_tmin.delay_ps(dm) * 1.001);
  }
}

TEST_F(BufferTest, FlimitInfiniteWhenBufferNeverWins) {
  // With an absurdly tight bracket the crossing may not exist; the
  // function must return a sentinel rather than a bogus number.
  FlimitOptions opt;
  opt.f_hi = 1.2;  // buffer cannot win by F=1.2
  const double f = flimit(dm, CellKind::Inv, CellKind::Inv, opt);
  EXPECT_TRUE(std::isinf(f));
}

TEST_F(BufferTest, NeverBuffersABuffer) {
  BoundedPath p = overloaded_path();
  BufferInsertionResult once = insert_buffers_local(p, dm, table);
  const std::size_t n_after_once = once.path.size();
  BufferInsertionResult twice = insert_buffers_local(once.path, dm, table);
  // Idempotent on the already-buffered node.
  EXPECT_EQ(twice.path.size(), n_after_once);
}

// Drive-dependence property: Flimit is fairly stable across the
// characterisation drive (it is a *library* constant in the paper).
class FlimitDriveTest : public ::testing::TestWithParam<double> {};

TEST_P(FlimitDriveTest, StableAcrossDrives) {
  const Library lib(Technology::cmos025());
  const ClosedFormModel dm(lib);
  FlimitOptions opt;
  opt.driver_drive_x = GetParam();
  opt.gate_drive_x = GetParam();
  const double f = flimit(dm, CellKind::Inv, CellKind::Inv, opt);
  const double f_ref = flimit(dm, CellKind::Inv, CellKind::Inv);
  EXPECT_NEAR(f, f_ref, 0.35 * f_ref) << "drive " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Drives, FlimitDriveTest,
                         ::testing::Values(2.0, 4.0, 8.0, 16.0));

}  // namespace
