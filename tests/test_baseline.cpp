// Tests for the AMPS-substitute baseline: the greedy iterative sizer must
// behave like the paper characterises the industrial tool — reaching a
// minimum delay no better than POPS (Fig. 2), needing more area at a hard
// constraint (Fig. 4), and burning orders of magnitude more evaluations
// (the Table 1 CPU story).

#include <gtest/gtest.h>

#include "pops/baseline/amps.hpp"
#include "pops/core/bounds.hpp"
#include "pops/core/sensitivity.hpp"
#include "pops/liberty/library.hpp"
#include "pops/process/technology.hpp"

namespace {

using namespace pops;
using namespace pops::timing;
using liberty::CellKind;
using liberty::Library;
using process::Technology;

class BaselineTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
  ClosedFormModel dm{lib};

  BoundedPath make_path(int n = 12) const {
    std::vector<PathStage> stages(static_cast<std::size_t>(n));
    const CellKind mix[] = {CellKind::Inv, CellKind::Nand2, CellKind::Nor2,
                            CellKind::Nand3};
    for (int i = 0; i < n; ++i)
      stages[static_cast<std::size_t>(i)].kind = mix[i % 4];
    stages[static_cast<std::size_t>(n / 2)].off_path_ff = 15.0 * lib.cref_ff();
    return BoundedPath(lib, stages, 2.0 * lib.cref_ff(),
                       25.0 * lib.cref_ff(), Edge::Rise,
                       dm.default_input_slew_ps());
  }
};

TEST_F(BaselineTest, GreedyMinimumNoBetterThanLinkEquations) {
  // Fig. 2: Tmin(POPS) <= Tmin(AMPS). The greedy discrete search cannot
  // beat the analytic fixed point (up to a hair of numerical slack).
  const BoundedPath p = make_path();
  const core::PathBounds bounds = core::compute_bounds(p, dm);
  const baseline::AmpsResult amps = baseline::minimize_delay(p, dm);
  EXPECT_GE(amps.delay_ps, bounds.tmin_ps * 0.999);
  // And it should land in the right neighbourhood (it is a real optimizer,
  // not a strawman).
  EXPECT_LE(amps.delay_ps, bounds.tmin_ps * 1.25);
}

TEST_F(BaselineTest, ConstraintModeMeetsFeasibleTc) {
  const BoundedPath p = make_path();
  const core::PathBounds bounds = core::compute_bounds(p, dm);
  const double tc = 1.4 * bounds.tmin_ps;
  const baseline::AmpsResult amps = baseline::meet_constraint(p, dm, tc);
  EXPECT_TRUE(amps.feasible);
  EXPECT_LE(amps.delay_ps, tc * 1.001);
}

TEST_F(BaselineTest, NeedsMoreAreaThanConstantSensitivity) {
  // Fig. 4: at a hard constraint the POPS distribution wins on area.
  const BoundedPath p = make_path();
  const core::PathBounds bounds = core::compute_bounds(p, dm);
  const double tc = 1.2 * bounds.tmin_ps;
  const core::SizingResult pops = core::size_for_constraint(p, dm, tc);
  const baseline::AmpsResult amps = baseline::meet_constraint(p, dm, tc);
  ASSERT_TRUE(pops.feasible);
  ASSERT_TRUE(amps.feasible);
  EXPECT_LE(pops.area_um, amps.area_um * 1.001);
}

TEST_F(BaselineTest, InfeasibleConstraintReported) {
  const BoundedPath p = make_path();
  const core::PathBounds bounds = core::compute_bounds(p, dm);
  const baseline::AmpsResult amps =
      baseline::meet_constraint(p, dm, 0.5 * bounds.tmin_ps);
  EXPECT_FALSE(amps.feasible);
}

TEST_F(BaselineTest, EvaluationCountsAreIterative) {
  // The CPU-structure claim behind Table 1: the greedy tool performs
  // O(N^2)-ish full-path evaluations, far beyond the sweep count of the
  // deterministic method.
  const BoundedPath p = make_path(16);
  const baseline::AmpsResult amps = baseline::minimize_delay(p, dm);
  EXPECT_GT(amps.evaluations, 1000);
}

TEST_F(BaselineTest, DeterministicUnderSeed) {
  const BoundedPath p = make_path();
  baseline::AmpsOptions opt;
  opt.seed = 77;
  const auto a = baseline::minimize_delay(p, dm, opt);
  const auto b = baseline::minimize_delay(p, dm, opt);
  EXPECT_DOUBLE_EQ(a.delay_ps, b.delay_ps);
  EXPECT_DOUBLE_EQ(a.area_um, b.area_um);
}

TEST_F(BaselineTest, RestartsNeverHurt) {
  const BoundedPath p = make_path();
  baseline::AmpsOptions none;
  none.random_restarts = 0;
  baseline::AmpsOptions some;
  some.random_restarts = 5;
  const auto a = baseline::minimize_delay(p, dm, none);
  const auto b = baseline::minimize_delay(p, dm, some);
  EXPECT_LE(b.delay_ps, a.delay_ps * 1.0 + 1e-9);
}

TEST_F(BaselineTest, InvalidTcThrows) {
  EXPECT_THROW(baseline::meet_constraint(make_path(), dm, 0.0),
               std::invalid_argument);
}

TEST_F(BaselineTest, RespectsFrozenStages) {
  BoundedPath p = make_path();
  p.set_cin(3, 9.0);
  p.set_sizable(3, false);
  const auto a = baseline::minimize_delay(p, dm);
  EXPECT_NEAR(a.path.cin(3), 9.0, 1e-12);
}

}  // namespace
