// Tests for the delay bounds (paper §3.1): Tmin below Tmax, the fixed
// point's independence from the starting solution (the paper's own claim,
// Fig. 1), and local optimality of the Tmin sizing.

#include <gtest/gtest.h>

#include "pops/core/bounds.hpp"
#include "pops/liberty/library.hpp"
#include "pops/process/technology.hpp"

namespace {

using namespace pops::core;
using namespace pops::timing;
using pops::liberty::CellKind;
using pops::liberty::Library;
using pops::process::Technology;

class BoundsTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
  ClosedFormModel dm{lib};

  BoundedPath make_path(int n, double terminal_x = 20.0,
                        double off_mid = 0.0) const {
    std::vector<PathStage> stages(static_cast<std::size_t>(n));
    const CellKind mix[] = {CellKind::Inv, CellKind::Nand2, CellKind::Inv,
                            CellKind::Nor2, CellKind::Nand3};
    for (int i = 0; i < n; ++i)
      stages[static_cast<std::size_t>(i)].kind = mix[i % 5];
    if (off_mid > 0.0)
      stages[static_cast<std::size_t>(n / 2)].off_path_ff = off_mid;
    return BoundedPath(lib, stages, 2.0 * lib.cref_ff(),
                       terminal_x * lib.cref_ff(), Edge::Rise,
                       dm.default_input_slew_ps());
  }
};

TEST_F(BoundsTest, TminStrictlyBelowTmax) {
  const BoundedPath p = make_path(9);
  const PathBounds b = compute_bounds(p, dm);
  EXPECT_GT(b.tmax_ps, b.tmin_ps);
  EXPECT_GT(b.tmin_ps, 0.0);
  EXPECT_NEAR(b.at_tmin.delay_ps(dm), b.tmin_ps, 1e-9);
  EXPECT_NEAR(b.at_tmax.delay_ps(dm), b.tmax_ps, 1e-9);
}

TEST_F(BoundsTest, TmaxIsAllMinimumDrive) {
  BoundedPath p = make_path(6);
  const double t = tmax_ps(p, dm);
  p.set_all_min_drive();
  EXPECT_NEAR(t, p.delay_ps(dm), 1e-9);
  for (std::size_t i = 1; i < p.size(); ++i)
    EXPECT_DOUBLE_EQ(p.cin(i), p.cin_min(i));
}

TEST_F(BoundsTest, FixedPointIndependentOfInitialSolution) {
  // The paper: "the final value, Tmin is conserved whatever is the initial
  // solution, ie the CREF value."
  const BoundedPath p = make_path(11);
  double reference = 0.0;
  for (double scale : {0.25, 1.0, 3.0, 10.0}) {
    BoundsOptions opt;
    opt.init_scale = scale;
    const BoundedPath sized = size_for_tmin(p, dm, opt);
    const double t = sized.delay_ps(dm);
    if (reference == 0.0) reference = t;
    EXPECT_NEAR(t, reference, 1e-4 * reference) << "init scale " << scale;
  }
}

TEST_F(BoundsTest, TminIsLocalMinimum) {
  // Perturbing any free CIN around the fixed point must not reduce the
  // path delay (first-order optimality of eq. 4).
  const BoundedPath p = make_path(8, 25.0, 10.0 * lib.cref_ff());
  const PathBounds b = compute_bounds(p, dm);
  for (std::size_t i = 1; i < b.at_tmin.size(); ++i) {
    for (double f : {0.93, 1.07}) {
      BoundedPath probe = b.at_tmin;
      const double target = probe.cin(i) * f;
      probe.set_cin(i, target);
      if (std::abs(probe.cin(i) - target) > 1e-9) continue;  // clamped
      EXPECT_GE(probe.delay_ps(dm), b.tmin_ps * (1.0 - 1e-7))
          << "stage " << i << " factor " << f;
    }
  }
}

TEST_F(BoundsTest, SensitivityVanishesAtTmin) {
  // dT/dCIN(i) ~ 0 at the fixed point for unclamped interior stages.
  const BoundedPath p = make_path(9, 30.0);
  const PathBounds b = compute_bounds(p, dm);
  // Sensitivity scale for comparison: |dT/dCIN| at all-minimum sizing.
  const double scale =
      std::abs(b.at_tmax.numeric_sensitivity(dm, b.at_tmax.size() / 2));
  for (std::size_t i = 1; i < b.at_tmin.size(); ++i) {
    const double cin = b.at_tmin.cin(i);
    if (cin <= b.at_tmin.cin_min(i) * 1.001 ||
        cin >= b.at_tmin.cin_max(i) * 0.999)
      continue;  // clamped stages carry residual sensitivity
    EXPECT_LT(std::abs(b.at_tmin.numeric_sensitivity(dm, i)), 0.05 * scale)
        << "stage " << i;
  }
}

TEST_F(BoundsTest, IterationTraceConvergesMonotonically) {
  const BoundedPath p = make_path(12);
  IterationTrace trace;
  BoundsOptions opt;
  const BoundedPath sized = size_for_tmin(p, dm, opt, &trace);
  ASSERT_GE(trace.delay_ps.size(), 2u);
  // Delay after the last sweep equals the converged Tmin.
  EXPECT_NEAR(trace.delay_ps.back(), sized.delay_ps(dm), 1e-6);
  // The trace settles: late iterations change nothing.
  const std::size_t n = trace.delay_ps.size();
  EXPECT_NEAR(trace.delay_ps[n - 1], trace.delay_ps[n - 2],
              1e-5 * trace.delay_ps[n - 1]);
  // And the spread from first to last is substantial (the Fig. 1 story).
  EXPECT_GT(trace.delay_ps.front(), trace.delay_ps.back());
}

TEST_F(BoundsTest, HeavierTerminalLoadRaisesTmin) {
  const PathBounds light = compute_bounds(make_path(7, 5.0), dm);
  const PathBounds heavy = compute_bounds(make_path(7, 60.0), dm);
  EXPECT_GT(heavy.tmin_ps, light.tmin_ps);
}

TEST_F(BoundsTest, LongerPathHasLargerTmin) {
  const PathBounds short_p = compute_bounds(make_path(5), dm);
  const PathBounds long_p = compute_bounds(make_path(15), dm);
  EXPECT_GT(long_p.tmin_ps, short_p.tmin_ps);
}

TEST_F(BoundsTest, BadOptionsThrow) {
  const BoundedPath p = make_path(4);
  BoundsOptions opt;
  opt.max_sweeps = 0;
  EXPECT_THROW(size_for_tmin(p, dm, opt), std::invalid_argument);
  opt = {};
  opt.tol = 0.0;
  EXPECT_THROW(size_for_tmin(p, dm, opt), std::invalid_argument);
}

// Property sweep: bounds behave sanely across path lengths.
class BoundsSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(BoundsSweepTest, TminBelowTmaxAndConverges) {
  const Library lib(Technology::cmos025());
  const ClosedFormModel dm(lib);
  std::vector<PathStage> stages(static_cast<std::size_t>(GetParam()));
  const CellKind mix[] = {CellKind::Nand2, CellKind::Inv, CellKind::Nor2};
  for (int i = 0; i < GetParam(); ++i)
    stages[static_cast<std::size_t>(i)].kind = mix[i % 3];
  const BoundedPath p(lib, stages, 1.5 * lib.cref_ff(), 10.0 * lib.cref_ff(),
                      Edge::Fall, dm.default_input_slew_ps());
  const PathBounds b = compute_bounds(p, dm);
  EXPECT_LT(b.tmin_ps, b.tmax_ps);
  EXPECT_LT(b.sweeps, BoundsOptions{}.max_sweeps);
}

INSTANTIATE_TEST_SUITE_P(Lengths, BoundsSweepTest,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 34, 55));

}  // namespace
