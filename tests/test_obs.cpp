// pops::obs — tracing and metrics. Spans nest and drain deterministically
// (jsonl form), the Chrome trace-event document is schema-valid, the
// registry's histograms bucket deterministically and its snapshots stay
// coherent under concurrent writers (the ConcurrencyTest suites below run
// under the TSan CI job), the daemon answers the "metrics" wire op — and,
// the acceptance bar: enabling tracing changes no optimization result
// bits while recording spans from every layer of the stack.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "pops/api/api.hpp"
#include "pops/net/client.hpp"
#include "pops/net/protocol.hpp"
#include "pops/net/server.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/obs/metrics.hpp"
#include "pops/obs/trace.hpp"
#include "pops/service/serialize.hpp"
#include "pops/service/sweep.hpp"

namespace {

using namespace pops;
using obs::Registry;
using obs::Span;
using obs::TraceRecorder;
using util::Json;

// ---------------------------------------------------------------------------
// Spans: nesting, ordering, args, zero-cost when off
// ---------------------------------------------------------------------------

TEST(ObsTrace, SpansNestAndDrainInCompletionOrder) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.start();
  {
    Span outer("test/outer");
    EXPECT_TRUE(outer.active());
    {
      Span inner("test/", "inner");
      inner.arg("k", 3.0);
    }
    { Span inner2("test/inner2"); }
  }
  {
    Span solo("test/solo");
    solo.arg("a", 1.0);
    solo.arg("b", 2.0);
    solo.arg("c", 3.0);
    solo.arg("d", 4.0);  // beyond the 3-arg capacity: dropped, not UB
  }
  rec.stop();

  const std::vector<Json> records = rec.jsonl_records();
  ASSERT_EQ(records.size(), 4u);
  // Completion order: inner spans land before the span that encloses
  // them; depth counts nesting at entry (outermost = 1).
  EXPECT_EQ(records[0].find("name")->as_string(), "test/inner");
  EXPECT_EQ(records[0].find("depth")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(records[0].find("args")->find("k")->as_number(), 3.0);
  EXPECT_EQ(records[1].find("name")->as_string(), "test/inner2");
  EXPECT_EQ(records[1].find("depth")->as_number(), 2.0);
  EXPECT_EQ(records[2].find("name")->as_string(), "test/outer");
  EXPECT_EQ(records[2].find("depth")->as_number(), 1.0);
  EXPECT_EQ(records[3].find("name")->as_string(), "test/solo");
  EXPECT_EQ(records[3].find("args")->size(), 3u);
  // One thread: seq increases by exactly one per completed span.
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].find("tid")->as_number(),
              records[0].find("tid")->as_number());
    EXPECT_EQ(records[i].find("seq")->as_number(),
              records[i - 1].find("seq")->as_number() + 1.0);
  }
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.stop();
  {
    Span span("test/ghost");
    EXPECT_FALSE(span.active());
    span.arg("ignored", 1.0);  // no-op, must not crash
  }
  // A fresh session sees neither the ghost span nor earlier sessions'.
  rec.start();
  rec.stop();
  EXPECT_TRUE(rec.jsonl_records().empty());
  EXPECT_TRUE(rec.jsonl().empty());
}

TEST(ObsTrace, ChromeJsonIsSchemaValid) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.start();
  {
    Span outer("test/chrome_outer");
    Span inner("test/chrome_inner");
  }
  rec.stop();

  const Json doc = rec.chrome_json();
  ASSERT_TRUE(doc.is_object());
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->size(), 2u);
  double outer_ts = 0.0, outer_end = 0.0;
  double inner_ts = 0.0, inner_end = 0.0;
  for (const Json& e : events->items()) {
    ASSERT_TRUE(e.is_object());
    EXPECT_TRUE(e.find("name")->is_string());
    EXPECT_EQ(e.find("ph")->as_string(), "X");
    EXPECT_TRUE(e.find("ts")->is_number());
    EXPECT_TRUE(e.find("dur")->is_number());
    EXPECT_EQ(e.find("pid")->dump(), "1");
    EXPECT_TRUE(e.find("tid")->is_number());
    EXPECT_GE(e.find("ts")->as_number(), 0.0);  // relative to start()
    EXPECT_GE(e.find("dur")->as_number(), 0.0);
    const double ts = e.find("ts")->as_number();
    const double end = ts + e.find("dur")->as_number();
    if (e.find("name")->as_string() == "test/chrome_outer") {
      outer_ts = ts;
      outer_end = end;
    } else {
      inner_ts = ts;
      inner_end = end;
    }
  }
  // The nested interval is contained in the enclosing one.
  EXPECT_LE(outer_ts, inner_ts);
  EXPECT_LE(inner_end, outer_end);

  // Non-destructive drain: a second call returns the same events.
  EXPECT_EQ(rec.chrome_json().dump(0), doc.dump(0));
}

// ---------------------------------------------------------------------------
// Registry: bucket determinism, snapshots, reset
// ---------------------------------------------------------------------------

TEST(ObsMetrics, HistogramBucketsAreDeterministic) {
  Registry reg;  // a private registry: no cross-test state
  const Registry::Histogram h = reg.histogram("h", {1.0, 2.0, 4.0});
  for (const double v : {0.5, 1.0, 1.5, 2.0, 3.0, 100.0}) h.observe(v);

  const Json snap = reg.snapshot_json();
  const Json* cell = snap.find("histograms")->find("h");
  ASSERT_NE(cell, nullptr);
  // counts[i] tallies observations <= bounds[i]; the last bucket is the
  // overflow. 0.5,1 | 1.5,2 | 3 | 100.
  EXPECT_EQ(cell->find("counts")->dump(0), "[2,2,1,1]");
  EXPECT_EQ(cell->find("bounds")->dump(0), "[1,2,4]");
  EXPECT_EQ(cell->find("count")->as_number(), 6.0);
  EXPECT_DOUBLE_EQ(cell->find("sum")->as_number(), 108.0);
  // Identical state serializes to identical bytes (sorted names, fixed
  // schema) — the wire op and tests can diff snapshots directly.
  EXPECT_EQ(reg.snapshot_json().dump(0), snap.dump(0));
}

TEST(ObsMetrics, CountersGaugesAndResetKeepCellsAlive) {
  Registry reg;
  const Registry::Counter c = reg.counter("c");
  const Registry::Gauge g = reg.gauge("g");
  c.add();
  c.add(2.5);
  g.set(7.0);
  g.add(-3.0);
  Json snap = reg.snapshot_json();
  EXPECT_DOUBLE_EQ(snap.find("counters")->find("c")->as_number(), 3.5);
  EXPECT_DOUBLE_EQ(snap.find("gauges")->find("g")->as_number(), 4.0);

  reg.reset();
  snap = reg.snapshot_json();
  EXPECT_DOUBLE_EQ(snap.find("counters")->find("c")->as_number(), 0.0);
  // Handles bound before the reset still hit the same (zeroed) cell.
  c.add();
  snap = reg.snapshot_json();
  EXPECT_DOUBLE_EQ(snap.find("counters")->find("c")->as_number(), 1.0);
}

// ---------------------------------------------------------------------------
// Concurrency stress (the TSan CI job keys on the ConcurrencyTest suites)
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, ObsRegistrySnapshotsStayCoherentUnderWriters) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg] {
      const Registry::Counter c = reg.counter("stress.adds");
      const Registry::Histogram h =
          reg.histogram("stress.values", {2.0, 4.0, 8.0});
      for (int i = 0; i < kIters; ++i) {
        c.add();
        h.observe(static_cast<double>(i % 16));
      }
    });
  }
  std::thread snapshotter([&reg, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      const Json snap = reg.snapshot_json();
      const Json* h = snap.find("histograms")->find("stress.values");
      if (!h) continue;
      // Coherence: observe() updates counts, count, and sum under one
      // lock, so every snapshot balances exactly.
      double bucket_total = 0.0;
      for (const Json& c : h->find("counts")->items())
        bucket_total += c.as_number();
      ASSERT_EQ(bucket_total, h->find("count")->as_number());
    }
  });
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  snapshotter.join();

  const Json snap = reg.snapshot_json();
  EXPECT_DOUBLE_EQ(snap.find("counters")->find("stress.adds")->as_number(),
                   static_cast<double>(kThreads) * kIters);
  EXPECT_EQ(
      snap.find("histograms")->find("stress.values")->find("count")->as_number(),
      static_cast<double>(kThreads) * kIters);
}

TEST(ConcurrencyTest, ObsTraceDrainsWhileWritersAppend) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.start();

  // > Chunk::kSize spans per thread so chunk growth races the drain.
  constexpr int kThreads = 4;
  constexpr int kPairs = 300;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < kPairs; ++i) {
        Span outer("stress/outer");
        Span inner("stress/inner");
        inner.arg("i", static_cast<double>(i));
      }
    });
  }
  std::thread drainer([&rec, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      (void)rec.chrome_json();
      (void)rec.jsonl_records();
    }
  });
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  drainer.join();
  rec.stop();

  const std::vector<Json> records = rec.jsonl_records();
  ASSERT_EQ(records.size(), static_cast<std::size_t>(kThreads) * kPairs * 2);
  // Per thread: inner (depth 2) completes before its outer (depth 1),
  // seq strictly increasing.
  std::map<double, std::vector<const Json*>> by_tid;
  for (const Json& r : records)
    by_tid[r.find("tid")->as_number()].push_back(&r);
  ASSERT_EQ(by_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, list] : by_tid) {
    ASSERT_EQ(list.size(), static_cast<std::size_t>(kPairs) * 2);
    for (std::size_t i = 0; i < list.size(); ++i) {
      const bool is_inner = i % 2 == 0;
      EXPECT_EQ(list[i]->find("name")->as_string(),
                is_inner ? "stress/inner" : "stress/outer");
      EXPECT_EQ(list[i]->find("depth")->as_number(), is_inner ? 2.0 : 1.0);
      if (i > 0)
        EXPECT_EQ(list[i]->find("seq")->as_number(),
                  list[i - 1]->find("seq")->as_number() + 1.0);
    }
  }
}

// ---------------------------------------------------------------------------
// The daemon's metrics wire op
// ---------------------------------------------------------------------------

TEST(ObsMetrics, MetricsWireOpRoundTrips) {
  net::SweepServer server;
  server.start();
  net::SweepClient client("127.0.0.1", server.port());

  service::SweepSpec spec;
  spec.circuits = {"c17"};
  spec.tc_ratios = {0.9};
  client.submit(spec);

  const Json reply = client.metrics();
  EXPECT_EQ(net::event_name(reply), "metrics");
  const Json* counters = reply.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  // The submit above flowed through the server and the sweep service.
  EXPECT_GE(counters->find("net.requests")->as_number(), 1.0);
  EXPECT_GE(counters->find("sweep.points")->as_number(), 1.0);
  ASSERT_NE(reply.find("gauges"), nullptr);
  ASSERT_NE(reply.find("histograms"), nullptr);
  server.stop();
}

// ---------------------------------------------------------------------------
// Acceptance: tracing observes, it never feeds back
// ---------------------------------------------------------------------------

std::vector<std::string> sweep_stream() {
  api::OptContext ctx;
  service::SweepService sweeps(ctx);
  service::SweepSpec spec;
  spec.circuits = {"c17", "c432"};
  spec.tc_ratios = {0.85, 0.95};
  spec.n_threads = 2;
  std::vector<std::string> records;
  sweeps.run(
      spec,
      [&ctx](const std::string& name) {
        return netlist::make_benchmark(ctx.lib(), name);
      },
      [&records](const service::SweepPoint& point) {
        records.push_back(
            service::to_json(point, {.measured = false}).dump(0));
      });
  return records;
}

TEST(ObsTrace, TracingChangesNoResultBitsAndSpansEveryLayer) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.stop();
  const std::vector<std::string> untraced = sweep_stream();

  rec.start();
  const std::vector<std::string> traced = sweep_stream();
  rec.stop();

  // Bit-identical replay: spans observe the run, they never feed back.
  ASSERT_EQ(traced.size(), untraced.size());
  for (std::size_t i = 0; i < traced.size(); ++i)
    EXPECT_EQ(traced[i], untraced[i]) << i;

  // And the trace saw every layer of the stack: pipeline pass, sweep
  // point, STA update, cache lookup, serialization.
  std::set<std::string> names;
  bool pass_span = false, sta_span = false;
  for (const Json& r : rec.jsonl_records()) {
    const std::string name = r.find("name")->as_string();
    names.insert(name);
    pass_span = pass_span || name.rfind("pass/", 0) == 0;
    sta_span = sta_span || name.rfind("sta/", 0) == 0;
  }
  EXPECT_TRUE(pass_span) << "no pipeline pass span";
  EXPECT_TRUE(sta_span) << "no STA span";
  EXPECT_TRUE(names.count("optimizer/point")) << "no sweep-point span";
  EXPECT_TRUE(names.count("cache/lookup")) << "no cache span";
  EXPECT_TRUE(names.count("serialize/point")) << "no serialization span";
  EXPECT_TRUE(names.count("sweep/run")) << "no sweep-service span";
}

}  // namespace
