// Tests for the constant sensitivity method (paper §3.2): the defining
// property dT/dCIN(i) = a, the delay/area trade-off it spans, constraint
// satisfaction by bisection on `a`, and its area advantage over the
// Sutherland equal-effort distribution.

#include <gtest/gtest.h>

#include "pops/core/bounds.hpp"
#include "pops/core/sensitivity.hpp"
#include "pops/liberty/library.hpp"
#include "pops/process/technology.hpp"

namespace {

using namespace pops::core;
using namespace pops::timing;
using pops::liberty::CellKind;
using pops::liberty::Library;
using pops::process::Technology;

class SensitivityTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
  ClosedFormModel dm{lib};

  BoundedPath make_path(int n = 11) const {
    std::vector<PathStage> stages(static_cast<std::size_t>(n));
    const CellKind mix[] = {CellKind::Inv, CellKind::Nand2, CellKind::Nor2,
                            CellKind::Inv, CellKind::Nand3};
    for (int i = 0; i < n; ++i)
      stages[static_cast<std::size_t>(i)].kind = mix[i % 5];
    return BoundedPath(lib, stages, 2.0 * lib.cref_ff(),
                       30.0 * lib.cref_ff(), Edge::Rise,
                       dm.default_input_slew_ps());
  }
};

TEST_F(SensitivityTest, ZeroSensitivityReproducesTmin) {
  const BoundedPath p = make_path();
  const PathBounds b = compute_bounds(p, dm);
  const BoundedPath at0 = size_at_sensitivity(p, dm, 0.0);
  EXPECT_NEAR(at0.delay_ps(dm), b.tmin_ps, 1e-4 * b.tmin_ps);
}

TEST_F(SensitivityTest, PositiveSensitivityRejected) {
  EXPECT_THROW(size_at_sensitivity(make_path(), dm, +1.0),
               std::invalid_argument);
}

TEST_F(SensitivityTest, RealizedSensitivityMatchesTarget) {
  // THE defining property (eq. 5/6): at the converged solution every
  // unclamped free stage satisfies the paper's stationarity equation
  //   A_(i-1)/CIN(i-1) - A_i (Coff(i)+CIN(i+1))/CIN(i)^2 = a
  // exactly (with the A_i evaluated at the solution, as in the paper).
  // The *numeric* dT/dCIN additionally sees the size-dependence of the
  // Miller coupling, which eq. (4)/(6) folds into the iterated A_i — so it
  // agrees in sign and magnitude but not to high precision.
  const BoundedPath p = make_path();
  const double a_scale = p.stage_coefficient(dm, 0) / p.cin(0);
  const double a = -0.15 * a_scale;
  const BoundedPath sized = size_at_sensitivity(p, dm, a);
  for (std::size_t i = 1; i < sized.size(); ++i) {
    const double cin = sized.cin(i);
    if (cin <= sized.cin_min(i) * 1.001 || cin >= sized.cin_max(i) * 0.999)
      continue;  // clamped: the target is unreachable there
    const double a_prev = sized.stage_coefficient(dm, i - 1);
    const double a_own = sized.stage_coefficient(dm, i);
    const double analytic = a_prev / sized.cin(i - 1) -
                            a_own * sized.load_ff(i) / (cin * cin);
    EXPECT_NEAR(analytic, a, 1e-3 * std::abs(a)) << "stage " << i;

    const double measured = sized.numeric_sensitivity(dm, i);
    EXPECT_LT(measured, 0.0) << "stage " << i;           // same sign
    EXPECT_NEAR(measured, a, 0.8 * std::abs(a)) << i;    // same magnitude
  }
}

TEST_F(SensitivityTest, DelayGrowsAndAreaShrinksAsAMoreNegative) {
  // Walking a from 0 to very negative traces the Fig. 3 trade-off curve.
  const BoundedPath p = make_path();
  const double a_scale = p.stage_coefficient(dm, 0) / p.cin(0);
  double prev_delay = 0.0, prev_area = 1e99;
  for (double f : {0.0, 0.05, 0.2, 0.8, 3.0}) {
    const BoundedPath sized = size_at_sensitivity(p, dm, -f * a_scale);
    const double d = sized.delay_ps(dm);
    const double area = sized.area_um();
    EXPECT_GE(d, prev_delay * (1.0 - 1e-9)) << "a factor " << f;
    EXPECT_LE(area, prev_area * (1.0 + 1e-9)) << "a factor " << f;
    prev_delay = d;
    prev_area = area;
  }
}

TEST_F(SensitivityTest, ConstraintMetAcrossTheFeasibleRange) {
  const BoundedPath p = make_path();
  const PathBounds b = compute_bounds(p, dm);
  for (double ratio : {1.05, 1.2, 1.5, 2.0, 3.0}) {
    const double tc = ratio * b.tmin_ps;
    const SizingResult r = size_for_constraint(p, dm, tc);
    EXPECT_TRUE(r.feasible) << "ratio " << ratio;
    EXPECT_LE(r.delay_ps, tc * 1.001) << "ratio " << ratio;
    // No gross over-delivery either (within 2% of the target or at the
    // all-minimum floor).
    if (r.delay_ps < b.tmax_ps * 0.999) {
      EXPECT_GE(r.delay_ps, tc * 0.98) << "ratio " << ratio;
    }
  }
}

TEST_F(SensitivityTest, InfeasibleConstraintFlagged) {
  const BoundedPath p = make_path();
  const PathBounds b = compute_bounds(p, dm);
  const SizingResult r = size_for_constraint(p, dm, 0.8 * b.tmin_ps);
  EXPECT_FALSE(r.feasible);
  // Best effort: the Tmin solution.
  EXPECT_NEAR(r.delay_ps, b.tmin_ps, 2e-3 * b.tmin_ps);
}

TEST_F(SensitivityTest, LooseConstraintReturnsAllMinimum) {
  const BoundedPath p = make_path();
  BoundedPath floor = p;
  floor.set_all_min_drive();
  const double tmax = floor.delay_ps(dm);
  const SizingResult r = size_for_constraint(p, dm, tmax * 2.0);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.area_um, floor.area_um(), 1e-9);
}

TEST_F(SensitivityTest, TighterConstraintCostsMoreArea) {
  const BoundedPath p = make_path();
  const PathBounds b = compute_bounds(p, dm);
  // Areas are non-increasing in the ratio, bottoming out at the
  // all-minimum floor once Tc exceeds Tmax.
  BoundedPath floor = p;
  floor.set_all_min_drive();
  double prev_area = 1e99;
  for (double ratio : {1.1, 1.4, 1.8, 2.5}) {
    const SizingResult r = size_for_constraint(p, dm, ratio * b.tmin_ps);
    EXPECT_LE(r.area_um, prev_area * (1.0 + 1e-9)) << ratio;
    EXPECT_GE(r.area_um, floor.area_um() * (1.0 - 1e-9)) << ratio;
    prev_area = r.area_um;
  }
  // Strict decrease away from the floor.
  const SizingResult tight = size_for_constraint(p, dm, 1.1 * b.tmin_ps);
  const SizingResult relaxed = size_for_constraint(p, dm, 1.5 * b.tmin_ps);
  EXPECT_GT(tight.area_um, relaxed.area_um);
}

TEST_F(SensitivityTest, InvalidTcThrows) {
  EXPECT_THROW(size_for_constraint(make_path(), dm, 0.0),
               std::invalid_argument);
  EXPECT_THROW(size_equal_effort(make_path(), dm, -5.0),
               std::invalid_argument);
}

TEST_F(SensitivityTest, EqualEffortMeetsConstraintButCostsMore) {
  // The paper's §3.2 motivation: Sutherland's equal-delay distribution is
  // fast "at the cost of an over-sizing of the gates with an important
  // logical weight". Compare areas at the same constraint.
  const BoundedPath p = make_path();
  const PathBounds b = compute_bounds(p, dm);
  bool compared = false;
  for (double ratio : {1.4, 1.8, 2.2}) {
    const double tc = ratio * b.tmin_ps;
    const SizingResult ours = size_for_constraint(p, dm, tc);
    const SizingResult equal = size_equal_effort(p, dm, tc);
    // Constant sensitivity reaches everything above Tmin; equal-effort's
    // own minimum delay sits above Tmin, so it may miss the tightest Tc —
    // which is itself part of the paper's point.
    EXPECT_TRUE(ours.feasible) << ratio;
    if (!equal.feasible) continue;
    compared = true;
    // Constant sensitivity never loses (allow sub-0.5% numerical noise).
    EXPECT_LE(ours.area_um, equal.area_um * 1.005) << ratio;
  }
  EXPECT_TRUE(compared) << "equal-effort never met any constraint";
}

TEST_F(SensitivityTest, FrozenStageIsRespected) {
  BoundedPath p = make_path();
  const double frozen_cin = 7.7;
  p.set_cin(4, frozen_cin);
  p.set_sizable(4, false);
  const PathBounds b = compute_bounds(p, dm);
  const SizingResult r = size_for_constraint(p, dm, 1.5 * b.tmin_ps);
  EXPECT_NEAR(r.path.cin(4), frozen_cin, 1e-12);
}

// Property sweep over constraint ratios (TEST_P): result always feasible
// for feasible constraints and area decreases with the ratio.
class ConstraintRatioTest : public ::testing::TestWithParam<double> {};

TEST_P(ConstraintRatioTest, FeasibleAndTight) {
  const Library lib(Technology::cmos025());
  const ClosedFormModel dm(lib);
  std::vector<PathStage> stages(13);
  const CellKind mix[] = {CellKind::Nand2, CellKind::Inv, CellKind::Nor3,
                          CellKind::Inv};
  for (std::size_t i = 0; i < stages.size(); ++i) stages[i].kind = mix[i % 4];
  stages[6].off_path_ff = 20.0 * lib.cref_ff();
  const BoundedPath p(lib, stages, 2.0 * lib.cref_ff(), 25.0 * lib.cref_ff(),
                      Edge::Rise, dm.default_input_slew_ps());
  const PathBounds b = compute_bounds(p, dm);
  const double tc = GetParam() * b.tmin_ps;
  const SizingResult r = size_for_constraint(p, dm, tc);
  EXPECT_TRUE(r.feasible);
  EXPECT_LE(r.delay_ps, tc * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Ratios, ConstraintRatioTest,
                         ::testing::Values(1.02, 1.1, 1.2, 1.35, 1.5, 1.75,
                                           2.0, 2.5, 3.0, 4.0));

}  // namespace
