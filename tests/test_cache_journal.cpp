// CacheJournal: append-only ResultCache persistence. The contract under
// test is crash recovery — a journal torn at ANY byte offset loses at
// most the final partial record: a truncated tail and a stale
// mid-compaction temp file must both replay every durable entry, with a
// per-record diagnostic for the skipped garbage, and the replayed cache
// must serve the original sweep bit-identically (all hits, exact record
// bytes). Plus the compaction bound: after compact(), the file holds the
// live entries and one header line, nothing else.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "pops/api/api.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/service/cache_journal.hpp"
#include "pops/service/result_cache.hpp"
#include "pops/service/serialize.hpp"
#include "pops/service/sweep.hpp"

namespace {

using namespace pops;
using service::CacheJournal;
using service::CacheLoadReport;
using service::ResultCache;
using service::SweepSpec;

SweepSpec small_spec() {
  SweepSpec spec;
  spec.circuits = {"c17"};
  spec.tc_ratios = {0.8, 0.9};
  spec.n_threads = 1;
  return spec;
}

/// One single-context "worker": cache + journal attached to a fresh
/// OptContext. Runs the spec and returns the deterministic record bytes.
struct Worker {
  explicit Worker(const std::string& path,
                  CacheJournal::Options opt = CacheJournal::Options(),
                  std::size_t capacity = 0)
      : cache(std::make_shared<ResultCache>(capacity)),
        journal(cache, path, opt) {
    ctx.set_result_cache(cache);
    journal.bind_context(api::OptimizerConfig{}.delay_model_selector(), ctx);
    loaded = journal.open(ctx, [this](const std::string&) { return &ctx; });
  }

  std::vector<std::string> run(const SweepSpec& spec) {
    service::SweepService sweeps(ctx);
    std::vector<std::string> records;
    sweeps.run(
        spec,
        [this](const std::string& name) {
          return netlist::make_benchmark(ctx.lib(), name);
        },
        [&records](const service::SweepPoint& point) {
          records.push_back(
              service::to_json(point, {.measured = false}).dump(0));
        });
    return records;
  }

  api::OptContext ctx;
  std::shared_ptr<ResultCache> cache;
  CacheJournal journal;
  CacheLoadReport loaded;
};

std::string temp_journal(const char* name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  std::remove((path + ".compact.tmp").c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::size_t count_lines(const std::string& text) {
  std::size_t n = 0;
  for (char c : text)
    if (c == '\n') ++n;
  return n;
}

TEST(CacheJournal, ReplayRoundTripIsBitIdenticalAndAllHits) {
  const std::string path = temp_journal("journal_roundtrip.jnl");
  const SweepSpec spec = small_spec();

  std::vector<std::string> cold;
  {
    Worker w(path);
    EXPECT_EQ(w.loaded.entries_loaded, 0u);
    cold = w.run(spec);
    EXPECT_EQ(w.cache->misses(), 2u);
    EXPECT_GE(w.journal.stats().appends, 2u);
    w.journal.close();
  }

  Worker warm(path);
  EXPECT_EQ(warm.loaded.entries_loaded, 2u);
  EXPECT_TRUE(warm.loaded.problems.empty());
  const std::vector<std::string> replayed = warm.run(spec);
  // Every point replays from the journaled cache, and the record bytes —
  // a pure function of the spec — are exactly the cold run's.
  EXPECT_EQ(warm.cache->hits(), 2u);
  EXPECT_EQ(warm.cache->misses(), 0u);
  ASSERT_EQ(replayed.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i)
    EXPECT_EQ(replayed[i], cold[i]) << i;
  std::remove(path.c_str());
}

TEST(CacheJournal, TruncatedTailLosesOnlyTheTornRecord) {
  const std::string path = temp_journal("journal_truncated.jnl");
  const SweepSpec spec = small_spec();
  std::vector<std::string> cold;
  {
    Worker w(path);
    cold = w.run(spec);
    w.journal.close();
  }

  // Tear the file mid-way through its final record — a crash between
  // write() and the flush boundary.
  const std::string full = slurp(path);
  const std::size_t durable_lines = count_lines(full);
  ASSERT_GE(durable_lines, 3u);  // header + >= 2 records
  const std::size_t last_start = full.rfind('\n', full.size() - 2) + 1;
  const std::size_t cut = last_start + (full.size() - last_start) / 2;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(cut));
  }

  Worker recovered(path);
  // Every record before the tear is recovered; the torn one is skipped
  // with a line-numbered diagnostic, not a fatal error.
  EXPECT_EQ(recovered.loaded.entries_loaded +
                recovered.loaded.initial_delays_loaded,
            durable_lines - 2);  // minus header, minus the torn record
  ASSERT_EQ(recovered.loaded.problems.size(), 1u);
  EXPECT_NE(recovered.loaded.problems[0].find(
                "line " + std::to_string(durable_lines)),
            std::string::npos);
  EXPECT_NE(recovered.loaded.problems[0].find("skipped"), std::string::npos);

  // The sweep completes bit-identically (the lost point recomputes) and
  // re-journals; a THIRD generation then replays everything — proving the
  // append stream did not glue new records onto the torn bytes.
  const std::vector<std::string> rerun = recovered.run(spec);
  ASSERT_EQ(rerun.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i)
    EXPECT_EQ(rerun[i], cold[i]) << i;
  recovered.journal.close();

  Worker third(path);
  EXPECT_EQ(third.loaded.entries_loaded, 2u);
  EXPECT_TRUE(third.loaded.problems.empty());
  const std::vector<std::string> warm = third.run(spec);
  EXPECT_EQ(third.cache->hits(), 2u);
  EXPECT_EQ(third.cache->misses(), 0u);
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i)
    EXPECT_EQ(warm[i], cold[i]) << i;
  std::remove(path.c_str());
}

TEST(CacheJournal, StaleMidCompactionTempIsDiscarded) {
  const std::string path = temp_journal("journal_midcompact.jnl");
  const SweepSpec spec = small_spec();
  {
    Worker w(path);
    w.run(spec);
    w.journal.close();
  }

  // An interruption mid-compaction leaves the original journal intact
  // plus a half-written temp that never got renamed over it.
  const std::string tmp = path + ".compact.tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    out << "{\"format\":\"pops-cache-journal\",\"version\":1,\"context\"";
  }

  Worker recovered(path);
  // The temp is garbage: removed at open, the real journal replays whole.
  EXPECT_EQ(recovered.loaded.entries_loaded, 2u);
  EXPECT_TRUE(recovered.loaded.problems.empty());
  EXPECT_FALSE(std::ifstream(tmp).good());
  const std::vector<std::string> warm = recovered.run(spec);
  EXPECT_EQ(recovered.cache->hits(), 2u);
  EXPECT_EQ(recovered.cache->misses(), 0u);
  (void)warm;
  std::remove(path.c_str());
}

TEST(CacheJournal, GarbageLineIsSkippedWithDiagnosticOthersSurvive) {
  const std::string path = temp_journal("journal_bitrot.jnl");
  {
    Worker w(path);
    w.run(small_spec());
    w.journal.close();
  }

  // Corrupt one interior record (bit rot), keep the rest.
  const std::string full = slurp(path);
  const std::size_t first_nl = full.find('\n');
  const std::size_t second_nl = full.find('\n', first_nl + 1);
  std::string mangled = full.substr(0, first_nl + 1) + "!corrupt!\n" +
                        full.substr(second_nl + 1);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << mangled;
  }

  Worker recovered(path);
  ASSERT_EQ(recovered.loaded.problems.size(), 1u);
  EXPECT_NE(recovered.loaded.problems[0].find("line 2"), std::string::npos);
  // Every other record replays.
  EXPECT_EQ(recovered.loaded.entries_loaded +
                recovered.loaded.initial_delays_loaded,
            count_lines(full) - 2);
  std::remove(path.c_str());
}

TEST(CacheJournal, ForeignContextHeaderRejectsTheFile) {
  const std::string path = temp_journal("journal_foreign.jnl");
  {
    Worker w(path);
    w.run(small_spec());
    w.journal.close();
  }

  // Flip the context signature in the header: the file is from some other
  // characterization and must be rejected wholesale, not merged.
  std::string full = slurp(path);
  const std::size_t sig = full.find("\"signature\":\"");
  ASSERT_NE(sig, std::string::npos);
  const std::size_t digit = sig + std::string("\"signature\":\"").size();
  full[digit] = full[digit] == '0' ? '1' : '0';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << full;
  }

  auto cache = std::make_shared<ResultCache>();
  api::OptContext ctx;
  ctx.set_result_cache(cache);
  CacheJournal journal(cache, path);
  EXPECT_THROW(
      journal.open(ctx, [&ctx](const std::string&) { return &ctx; }),
      std::invalid_argument);
  std::remove(path.c_str());
}

TEST(CacheJournal, CompactionBoundsFileToLiveEntries) {
  const std::string path = temp_journal("journal_compact.jnl");
  // Suppress auto-compaction so the garbage accumulation is observable.
  CacheJournal::Options opt;
  opt.max_garbage_ratio = 1.0;
  opt.min_compact_bytes = ~std::size_t{0};

  // Capacity 1: the second point evicts the first — its journal record
  // becomes garbage that only compaction can reclaim.
  Worker w(path, opt, /*capacity=*/1);
  w.run(small_spec());
  const CacheJournal::Stats before = w.journal.stats();
  EXPECT_GT(before.garbage_bytes, 0u);
  EXPECT_EQ(before.total_bytes, slurp(path).size());

  w.journal.compact();
  const CacheJournal::Stats after = w.journal.stats();
  EXPECT_EQ(after.compactions, before.compactions + 1);
  EXPECT_EQ(after.garbage_bytes, 0u);
  // The bound: file size == live record bytes + one header line. Checked
  // against the actual file, not just the journal's own accounting.
  const std::string compacted = slurp(path);
  EXPECT_EQ(after.total_bytes, compacted.size());
  const std::size_t header_bytes = compacted.find('\n') + 1;
  EXPECT_EQ(after.total_bytes, after.live_bytes + header_bytes);
  EXPECT_LT(after.total_bytes, before.total_bytes);

  // And the compacted journal still replays: the surviving entry hits.
  w.journal.close();
  Worker warm(path, opt, /*capacity=*/1);
  EXPECT_EQ(warm.loaded.entries_loaded, 1u);
  EXPECT_TRUE(warm.loaded.problems.empty());
  std::remove(path.c_str());
}

}  // namespace
