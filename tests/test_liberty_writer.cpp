// Tests for the Liberty export: structural well-formedness, grid
// consistency with the delay model, and monotonicity of the tabulated
// values.

#include <gtest/gtest.h>

#include <sstream>

#include "pops/liberty/library.hpp"
#include "pops/process/technology.hpp"
#include "pops/timing/liberty_writer.hpp"

namespace {

using namespace pops;
using namespace pops::timing;
using liberty::CellKind;
using liberty::Library;
using process::Technology;

class LibertyWriterTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
  ClosedFormModel dm{lib};

  static std::size_t count(const std::string& hay, const std::string& needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = hay.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  }
};

TEST_F(LibertyWriterTest, EmitsEveryCell) {
  const std::string text = write_liberty_string(dm);
  for (const liberty::Cell& cell : lib.cells())
    EXPECT_NE(text.find("cell (" + cell.name + "_x"), std::string::npos)
        << cell.name;
  EXPECT_NE(text.find("library (pops_cmos025)"), std::string::npos);
}

TEST_F(LibertyWriterTest, BalancedBraces) {
  const std::string text = write_liberty_string(dm);
  EXPECT_EQ(count(text, "{"), count(text, "}"));
  EXPECT_GT(count(text, "{"), 10u);
}

TEST_F(LibertyWriterTest, ArcCountsMatchFanin) {
  LibertyWriterOptions opt;
  const std::string text = write_liberty_string(dm, opt);
  // Total timing groups = sum of cell fanins.
  std::size_t arcs = 0;
  for (const liberty::Cell& cell : lib.cells())
    arcs += static_cast<std::size_t>(cell.fanin);
  EXPECT_EQ(count(text, "timing () {"), arcs);
  // Four tables (rise/fall x delay/slew) per arc.
  EXPECT_EQ(count(text, "cell_rise"), arcs);
  EXPECT_EQ(count(text, "fall_transition"), arcs);
}

TEST_F(LibertyWriterTest, TableValuesMatchModel) {
  // Spot-check: the inv cell's first cell_fall entry equals the model at
  // (first slew, first load).
  LibertyWriterOptions opt;
  opt.slew_grid_ps = {40.0};
  opt.fanout_grid = {3.0};
  const std::string text = write_liberty_string(dm, opt);

  const auto& inv = lib.cell(CellKind::Inv);
  const double wn = lib.tech().wmin_um * opt.drive_x;
  const double cin = inv.cin_ff(lib.tech(), wn);
  const double load = 3.0 * cin + inv.cpar_ff(lib.tech(), wn);
  const double expect = dm.delay_ps(inv, Edge::Fall, 40.0, cin, load);

  char needle[64];
  std::snprintf(needle, sizeof needle, "%.4f", expect);
  EXPECT_NE(text.find(needle), std::string::npos)
      << "expected value " << needle << " not found";
}

TEST_F(LibertyWriterTest, ValuesMonotoneInLoad) {
  // Extract nothing — recompute the same grid and assert the model rows
  // the writer would emit increase with load for every cell/edge.
  LibertyWriterOptions opt;
  for (const liberty::Cell& cell : lib.cells()) {
    const double wn = lib.tech().wmin_um * opt.drive_x;
    const double cin = cell.cin_ff(lib.tech(), wn);
    const double cpar = cell.cpar_ff(lib.tech(), wn);
    for (Edge e : {Edge::Rise, Edge::Fall}) {
      double prev = -1.0;
      for (double f : opt.fanout_grid) {
        const double d = dm.delay_ps(cell, e, 50.0, cin, f * cin + cpar);
        EXPECT_GT(d, prev) << cell.name;
        prev = d;
      }
    }
  }
}

TEST_F(LibertyWriterTest, EmptyGridRejected) {
  LibertyWriterOptions opt;
  opt.slew_grid_ps.clear();
  std::ostringstream out;
  EXPECT_THROW(write_liberty(out, dm, opt), std::invalid_argument);
}

TEST_F(LibertyWriterTest, UnatenessAnnotated) {
  const std::string text = write_liberty_string(dm);
  EXPECT_NE(text.find("negative_unate"), std::string::npos);  // inverting
  EXPECT_NE(text.find("non_unate"), std::string::npos);       // xor
  EXPECT_NE(text.find("positive_unate"), std::string::npos);  // buf
}

}  // namespace
