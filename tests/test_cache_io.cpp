// Persistence of ResultCache (service/cache_io.hpp): full-fidelity JSON
// round trips of netlists and reports, save -> load -> replay
// bit-identical to the original run, stale-context rejection with
// diagnostics, per-entry corruption skipping, deterministic serialization,
// and the LRU capacity bound.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "pops/api/api.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/service/cache_io.hpp"
#include "pops/service/result_cache.hpp"
#include "pops/service/serialize.hpp"
#include "pops/util/hash.hpp"

namespace {

using namespace pops;
using api::OptContext;
using api::Optimizer;
using api::OptimizerConfig;
using api::PipelineReport;
using netlist::Netlist;
using service::CacheLoadReport;
using service::ResultCache;
using util::Json;

void expect_same_netlist(const Netlist& a, const Netlist& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.fresh_counter(), b.fresh_counter());
  for (netlist::NodeId id = 0; id < static_cast<netlist::NodeId>(a.size());
       ++id) {
    const netlist::Node& na = a.node(id);
    const netlist::Node& nb = b.node(id);
    EXPECT_EQ(na.name, nb.name);
    EXPECT_EQ(na.is_input, nb.is_input);
    EXPECT_EQ(na.kind, nb.kind);
    EXPECT_EQ(na.fanins, nb.fanins);
    EXPECT_EQ(na.wn_um, nb.wn_um);  // bit-exact, not just close
    EXPECT_EQ(na.wire_cap_ff, nb.wire_cap_ff);
    EXPECT_EQ(na.is_output, nb.is_output);
    EXPECT_EQ(na.po_load_ff, nb.po_load_ff);
  }
}

// ----- netlist archive --------------------------------------------------------

TEST(CacheIo, NetlistRoundTripIsExact) {
  OptContext ctx;
  // An *optimized* netlist: buffer insertion re-points fanins at
  // later-appended nodes, the exact shape add_gate cannot replay.
  Netlist nl = netlist::make_benchmark(ctx.lib(), "c432");
  Optimizer opt(ctx);
  opt.run_relative(nl, 0.75);

  const Json archived = service::archive_netlist(nl);
  const Netlist restored = service::restore_netlist(archived, ctx.lib());
  expect_same_netlist(nl, restored);
  EXPECT_EQ(ResultCache::hash_netlist(nl), ResultCache::hash_netlist(restored));
  // Serialization is deterministic: archiving the restored netlist gives
  // the same bytes.
  EXPECT_EQ(archived.dump(0), service::archive_netlist(restored).dump(0));
}

TEST(CacheIo, RestoreNetlistRejectsCorruption) {
  OptContext ctx;
  const Netlist nl = netlist::make_benchmark(ctx.lib(), "c17");
  Json j = service::archive_netlist(nl);
  // Duplicate a node name.
  Json& nodes = j["nodes"];
  nodes.push_back(nodes.items().front());
  EXPECT_THROW(service::restore_netlist(j, ctx.lib()), std::invalid_argument);
}

// ----- report archive ---------------------------------------------------------

TEST(CacheIo, ReportRoundTripIsExact) {
  OptContext ctx;
  Netlist nl = netlist::make_benchmark(ctx.lib(), "c432");
  Optimizer opt(ctx);
  const PipelineReport report = opt.run_relative(nl, 0.8);
  ASSERT_NE(report.protocol(), nullptr) << "fixture must exercise per-path "
                                           "protocol results";

  const Json archived = service::archive_report(report);
  const PipelineReport restored =
      service::restore_report(archived, ctx.lib());

  // Field-by-field bit-exactness, including the nested per-path sizing.
  EXPECT_EQ(report.tc_ps, restored.tc_ps);
  EXPECT_EQ(report.initial_delay_ps, restored.initial_delay_ps);
  EXPECT_EQ(report.final_delay_ps, restored.final_delay_ps);
  EXPECT_EQ(report.initial_area_um, restored.initial_area_um);
  EXPECT_EQ(report.final_area_um, restored.final_area_um);
  EXPECT_EQ(report.met, restored.met);
  EXPECT_EQ(report.delay_model, restored.delay_model);
  ASSERT_EQ(report.passes.size(), restored.passes.size());
  for (std::size_t i = 0; i < report.passes.size(); ++i) {
    EXPECT_EQ(report.passes[i].pass_name, restored.passes[i].pass_name);
    EXPECT_EQ(report.passes[i].runtime_ms, restored.passes[i].runtime_ms);
    EXPECT_EQ(report.passes[i].circuit.has_value(),
              restored.passes[i].circuit.has_value());
  }
  const core::CircuitResult* orig = report.protocol();
  const core::CircuitResult* back = restored.protocol();
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(orig->rounds, back->rounds);
  EXPECT_EQ(orig->paths_optimized, back->paths_optimized);
  ASSERT_EQ(orig->per_path.size(), back->per_path.size());
  for (std::size_t i = 0; i < orig->per_path.size(); ++i) {
    const core::ProtocolResult& a = orig->per_path[i];
    const core::ProtocolResult& b = back->per_path[i];
    EXPECT_EQ(a.domain, b.domain);
    EXPECT_EQ(a.method, b.method);
    EXPECT_EQ(a.tmin_ps, b.tmin_ps);
    EXPECT_EQ(a.tmax_ps, b.tmax_ps);
    EXPECT_EQ(a.sizing.delay_ps, b.sizing.delay_ps);
    EXPECT_EQ(a.sizing.a, b.sizing.a);
    ASSERT_EQ(a.sizing.path.size(), b.sizing.path.size());
    EXPECT_EQ(a.sizing.path.cins(), b.sizing.path.cins());
    EXPECT_EQ(a.sizing.path.terminal_ff(), b.sizing.path.terminal_ff());
  }
  // The public JSON projection of both reports is byte-identical — what
  // sweep records and JSONL streams are made of.
  EXPECT_EQ(service::to_json(report).dump(0),
            service::to_json(restored).dump(0));
}

// ----- full cache round trip --------------------------------------------------

/// Run a two-circuit, two-Tc grid with a cache installed; returns the
/// reports in run order.
std::vector<PipelineReport> run_grid(OptContext& ctx) {
  Optimizer opt(ctx);
  std::vector<PipelineReport> reports;
  for (const char* name : {"c17", "c432"}) {
    for (const double ratio : {0.8, 0.9}) {
      Netlist nl = netlist::make_benchmark(ctx.lib(), name);
      reports.push_back(opt.run_relative(nl, ratio));
    }
  }
  return reports;
}

TEST(CacheIo, SaveLoadReplayIsBitIdentical) {
  // Process A: run a grid, save the cache.
  OptContext save_ctx;
  auto save_cache = std::make_shared<ResultCache>();
  save_ctx.set_result_cache(save_cache);
  const std::vector<PipelineReport> fresh = run_grid(save_ctx);
  ASSERT_EQ(save_cache->size(), 4u);
  const Json doc = service::save_result_cache(*save_cache, save_ctx);

  // "Process B": a brand-new context + cache, warmed from the document.
  OptContext load_ctx;
  auto load_cache = std::make_shared<ResultCache>();
  load_ctx.set_result_cache(load_cache);
  const CacheLoadReport loaded =
      service::load_result_cache(*load_cache, load_ctx, doc);
  EXPECT_EQ(loaded.entries_loaded, 4u);
  EXPECT_GT(loaded.initial_delays_loaded, 0u);
  EXPECT_TRUE(loaded.problems.empty()) << loaded.problems.front();

  // The same grid replays entirely from cache, bit-identically.
  const std::vector<PipelineReport> replayed = run_grid(load_ctx);
  EXPECT_EQ(load_cache->hits(), 4u);
  EXPECT_EQ(load_cache->misses(), 0u);
  ASSERT_EQ(fresh.size(), replayed.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_TRUE(replayed[i].from_cache) << i;
    PipelineReport expect = fresh[i];
    // from_cache is the only field allowed to differ.
    expect.from_cache = replayed[i].from_cache;
    EXPECT_EQ(service::to_json(expect).dump(0),
              service::to_json(replayed[i]).dump(0))
        << i;
  }

  // Determinism: re-saving the loaded cache reproduces the document.
  EXPECT_EQ(doc.dump(2),
            service::save_result_cache(*load_cache, load_ctx).dump(2));
}

TEST(CacheIo, LoadRejectsStaleContextWithDiagnostics) {
  OptContext save_ctx;
  auto cache = std::make_shared<ResultCache>();
  save_ctx.set_result_cache(cache);
  Optimizer opt(save_ctx);
  Netlist nl = netlist::make_benchmark(save_ctx.lib(), "c17");
  opt.run_relative(nl, 0.9);
  const Json doc = service::save_result_cache(*cache, save_ctx);

  // A context with a different RNG seed is a different characterization:
  // its results would not replay bit-identically.
  OptContext other(process::Technology::cmos025(), core::FlimitOptions{},
                   /*rng_seed=*/99);
  ResultCache fresh;
  try {
    service::load_result_cache(fresh, other, doc);
    FAIL() << "expected stale-context rejection";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("different context characterization"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("rng_seed"), std::string::npos) << msg;
  }
  EXPECT_EQ(fresh.size(), 0u);
}

TEST(CacheIo, LoadRejectsWrongFormatAndVersion) {
  OptContext ctx;
  ResultCache cache;
  EXPECT_THROW(service::load_result_cache(cache, ctx, Json::parse("{}")),
               std::invalid_argument);
  EXPECT_THROW(service::load_result_cache(
                   cache, ctx, Json::parse(R"({"format": "other"})")),
               std::invalid_argument);

  OptContext save_ctx;
  auto save_cache = std::make_shared<ResultCache>();
  Json doc = service::save_result_cache(*save_cache, save_ctx);
  doc["version"] = 999;
  EXPECT_THROW(service::load_result_cache(cache, ctx, doc),
               std::invalid_argument);
}

TEST(CacheIo, CorruptEntriesAreSkippedWithDiagnostics) {
  OptContext save_ctx;
  auto cache = std::make_shared<ResultCache>();
  save_ctx.set_result_cache(cache);
  run_grid(save_ctx);
  Json doc = service::save_result_cache(*cache, save_ctx);

  // Corrupt the first entry's integrity hash: its netlist no longer
  // matches, so load must skip exactly that entry.
  Json corrupted = Json::array();
  bool first = true;
  for (const Json& e : doc["entries"].items()) {
    Json copy = e;
    if (first) {
      copy["netlist_hash"] = "00000000deadbeef";
      first = false;
    }
    corrupted.push_back(std::move(copy));
  }
  doc["entries"] = std::move(corrupted);

  OptContext load_ctx;
  ResultCache fresh;
  const CacheLoadReport loaded =
      service::load_result_cache(fresh, load_ctx, doc);
  EXPECT_EQ(loaded.entries_loaded, 3u);
  ASSERT_EQ(loaded.problems.size(), 1u);
  EXPECT_NE(loaded.problems[0].find("integrity"), std::string::npos)
      << loaded.problems[0];
  EXPECT_EQ(fresh.size(), 3u);
}

TEST(CacheIo, NonFiniteReportFieldsSurviveTheRoundTrip) {
  // The weak-constraint path realizes a sensitivity coefficient of -inf
  // (size_for_constraint's all-minimum limit). JSON numbers cannot carry
  // non-finite values — a naive archive writes null and the entry would
  // be skipped on every reload, silently defeating persistence for
  // exactly those points.
  OptContext save_ctx;
  auto cache = std::make_shared<ResultCache>();
  save_ctx.set_result_cache(cache);
  Optimizer opt(save_ctx);
  Netlist nl = netlist::make_benchmark(save_ctx.lib(), "c17");
  // A tight constraint: after buffering/interaction some per-path
  // constraints land at/above that path's Tmax, whose sizing realizes
  // a = -inf (c17 at 0.7x initial hits it on several paths).
  const PipelineReport fresh = opt.run_relative(nl, 0.7);
  ASSERT_NE(fresh.protocol(), nullptr);
  bool has_nonfinite_a = false;
  for (const core::ProtocolResult& p : fresh.protocol()->per_path)
    if (!std::isfinite(p.sizing.a)) has_nonfinite_a = true;
  ASSERT_TRUE(has_nonfinite_a)
      << "fixture must exercise the a = -inf weak-constraint path";

  const Json doc = service::save_result_cache(*cache, save_ctx);
  OptContext load_ctx;
  auto warmed = std::make_shared<ResultCache>();
  load_ctx.set_result_cache(warmed);
  const CacheLoadReport loaded =
      service::load_result_cache(*warmed, load_ctx, doc);
  EXPECT_EQ(loaded.entries_loaded, 1u);
  EXPECT_TRUE(loaded.problems.empty())
      << loaded.problems.front();

  Optimizer opt2(load_ctx);
  Netlist nl2 = netlist::make_benchmark(load_ctx.lib(), "c17");
  const PipelineReport replay = opt2.run_relative(nl2, 0.7);
  EXPECT_TRUE(replay.from_cache);
  PipelineReport expect = fresh;
  expect.from_cache = replay.from_cache;
  EXPECT_EQ(service::to_json(expect).dump(0),
            service::to_json(replay).dump(0));
}

TEST(CacheIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "pops_cache_io_test.json";
  OptContext save_ctx;
  auto cache = std::make_shared<ResultCache>();
  save_ctx.set_result_cache(cache);
  Optimizer opt(save_ctx);
  Netlist nl = netlist::make_benchmark(save_ctx.lib(), "c17");
  const PipelineReport fresh = opt.run_relative(nl, 0.85);
  service::save_result_cache_file(*cache, save_ctx, path);

  OptContext load_ctx;
  auto warmed = std::make_shared<ResultCache>();
  load_ctx.set_result_cache(warmed);
  const CacheLoadReport loaded =
      service::load_result_cache_file(*warmed, load_ctx, path);
  EXPECT_EQ(loaded.entries_loaded, 1u);

  Optimizer opt2(load_ctx);
  Netlist nl2 = netlist::make_benchmark(load_ctx.lib(), "c17");
  const PipelineReport replay = opt2.run_relative(nl2, 0.85);
  EXPECT_TRUE(replay.from_cache);
  EXPECT_EQ(fresh.final_delay_ps, replay.final_delay_ps);
  expect_same_netlist(nl, nl2);
  std::remove(path.c_str());
}

TEST(CacheIo, MissingFileThrowsRuntimeError) {
  OptContext ctx;
  ResultCache cache;
  EXPECT_THROW(service::load_result_cache_file(
                   cache, ctx, "/nonexistent/pops-cache.json"),
               std::runtime_error);
}

// ----- foreign-backend entries ------------------------------------------------

TEST(CacheIo, ForeignBackendEntriesNeverAliasAfterLoad) {
  // Save a cache whose single entry was computed under the table backend.
  OptContext save_ctx;
  auto cache = std::make_shared<ResultCache>();
  save_ctx.set_result_cache(cache);
  OptimizerConfig table_cfg;
  table_cfg.delay_model = "table";
  Optimizer table_opt(save_ctx, table_cfg);
  Netlist nl = netlist::make_benchmark(save_ctx.lib(), "c17");
  const PipelineReport table_fresh = table_opt.run_relative(nl, 0.9);
  EXPECT_EQ(table_fresh.delay_model, "table");
  const Json doc = service::save_result_cache(*cache, save_ctx);
  {
    // The archived entry records which backend produced it.
    const Json& entry = doc.find("entries")->items().front();
    EXPECT_EQ(entry.find("delay_model")->as_string(), "table");
  }

  OptContext load_ctx;
  auto warmed = std::make_shared<ResultCache>();
  load_ctx.set_result_cache(warmed);
  service::load_result_cache(*warmed, load_ctx, doc);

  // A closed-form run of the same point must MISS (recompute under its own
  // backend), not replay the table entry.
  Optimizer cf_opt(load_ctx);
  Netlist cf_nl = netlist::make_benchmark(load_ctx.lib(), "c17");
  const PipelineReport cf = cf_opt.run_relative(cf_nl, 0.9);
  EXPECT_FALSE(cf.from_cache);
  EXPECT_EQ(cf.delay_model, "closed-form");

  // The table run under the loaded cache replays the persisted entry.
  Optimizer table_opt2(load_ctx, table_cfg);
  Netlist table_nl = netlist::make_benchmark(load_ctx.lib(), "c17");
  const PipelineReport table_replay = table_opt2.run_relative(table_nl, 0.9);
  EXPECT_TRUE(table_replay.from_cache);
  EXPECT_EQ(table_replay.delay_model, "table");
  EXPECT_EQ(table_fresh.final_delay_ps, table_replay.final_delay_ps);
}

// ----- LRU bound --------------------------------------------------------------

TEST(ResultCacheLru, EvictsLeastRecentlyUsed) {
  OptContext ctx;
  auto cache = std::make_shared<ResultCache>(/*capacity=*/2);
  ctx.set_result_cache(cache);
  Optimizer opt(ctx);

  auto run_point = [&](double ratio) {
    Netlist nl = netlist::make_benchmark(ctx.lib(), "c17");
    return opt.run_relative(nl, ratio);
  };

  run_point(0.80);  // A
  run_point(0.90);  // B
  EXPECT_EQ(cache->size(), 2u);
  EXPECT_EQ(cache->stats().evictions, 0u);

  run_point(0.80);  // touch A: B becomes least-recent
  run_point(0.95);  // C -> evicts B
  EXPECT_EQ(cache->size(), 2u);
  EXPECT_EQ(cache->stats().evictions, 1u);

  EXPECT_TRUE(run_point(0.80).from_cache);   // A survived
  EXPECT_TRUE(run_point(0.95).from_cache);   // C resident
  EXPECT_FALSE(run_point(0.90).from_cache);  // B was evicted, recomputed
}

TEST(ResultCacheLru, UnboundedByDefaultAndShrinkEvicts) {
  ResultCache cache;
  EXPECT_EQ(cache.capacity(), 0u);
  EXPECT_EQ(cache.stats().capacity, 0u);

  OptContext ctx;
  ctx.set_result_cache(std::shared_ptr<ResultCache>(&cache, [](auto*) {}));
  Optimizer opt(ctx);
  for (const double ratio : {0.8, 0.85, 0.9, 0.95}) {
    Netlist nl = netlist::make_benchmark(ctx.lib(), "c17");
    opt.run_relative(nl, ratio);
  }
  EXPECT_EQ(cache.size(), 4u);

  cache.set_capacity(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 3u);
  // The survivor is the most recently used point.
  Netlist nl = netlist::make_benchmark(ctx.lib(), "c17");
  EXPECT_TRUE(opt.run_relative(nl, 0.95).from_cache);
  ctx.set_result_cache(nullptr);
}

TEST(ResultCacheLru, EvictedEntriesPersistNothing) {
  // Persistence only archives *resident* entries: what was evicted is gone.
  OptContext ctx;
  auto cache = std::make_shared<ResultCache>(/*capacity=*/1);
  ctx.set_result_cache(cache);
  Optimizer opt(ctx);
  for (const double ratio : {0.8, 0.9}) {
    Netlist nl = netlist::make_benchmark(ctx.lib(), "c17");
    opt.run_relative(nl, ratio);
  }
  const Json doc = service::save_result_cache(*cache, ctx);
  EXPECT_EQ(doc.find("entries")->items().size(), 1u);
}

// ----- hex helpers ------------------------------------------------------------

TEST(HexU64, RoundTripAndRejection) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{0xffffffffffffffffull},
        std::uint64_t{0x0123456789abcdefull}}) {
    std::uint64_t back = 1;
    EXPECT_TRUE(util::parse_hex_u64(util::hex_u64(v), back));
    EXPECT_EQ(v, back);
  }
  EXPECT_EQ(util::hex_u64(0xff), "00000000000000ff");
  std::uint64_t out = 0;
  EXPECT_FALSE(util::parse_hex_u64("", out));
  EXPECT_FALSE(util::parse_hex_u64("xyz", out));
  EXPECT_FALSE(util::parse_hex_u64("00000000000000000", out));  // 17 digits
  EXPECT_TRUE(util::parse_hex_u64("FF", out));
  EXPECT_EQ(out, 0xffu);
}

}  // namespace
