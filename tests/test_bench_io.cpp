// Unit tests for the ISCAS-85 .bench reader/writer: format coverage,
// decomposition of non-library operators, error diagnostics, round trips.

#include <gtest/gtest.h>

#include "pops/liberty/library.hpp"
#include "pops/netlist/bench_io.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/netlist/logic_sim.hpp"
#include "pops/process/technology.hpp"
#include "pops/util/rng.hpp"

namespace {

using namespace pops::netlist;
using pops::liberty::CellKind;
using pops::liberty::Library;
using pops::process::Technology;
using pops::util::Rng;

class BenchIoTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
};

TEST_F(BenchIoTest, ParsesBasicOps) {
  const Netlist nl = read_bench_string(R"(
# comment line
INPUT(a)
INPUT(b)
OUTPUT(y)
n1 = NAND(a, b)
n2 = NOT(n1)
y  = NOR(n2, a)
)",
                                       lib);
  EXPECT_EQ(nl.stats().n_inputs, 2u);
  EXPECT_EQ(nl.stats().n_gates, 3u);
  EXPECT_EQ(nl.node(nl.find("y")).kind, CellKind::Nor2);
  EXPECT_TRUE(nl.node(nl.find("y")).is_output);
  EXPECT_NO_THROW(nl.validate());
}

TEST_F(BenchIoTest, HandlesOutOfOrderDefinitions) {
  const Netlist nl = read_bench_string(R"(
INPUT(a)
OUTPUT(y)
y = NOT(m)
m = NOT(a)
)",
                                       lib);
  EXPECT_EQ(nl.stats().n_gates, 2u);
}

TEST_F(BenchIoTest, DecomposesAndOrIntoLibrary) {
  const Netlist nl = read_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
y = AND(a, b, c)
)",
                                       lib);
  // AND is not a library cell: expect a NAND3 + INV (or equivalent tree).
  const LogicSimulator sim(nl);
  for (unsigned p = 0; p < 8; ++p) {
    const bool a = p & 1, b = p & 2, c = p & 4;
    EXPECT_EQ(sim.eval_outputs({a, b, c}).front(), a && b && c) << p;
  }
}

TEST_F(BenchIoTest, WideGatesMatchSemantics) {
  // 8-input NAND / 6-input OR / 3-input XOR, as found in real ISCAS files.
  const Netlist nl = read_bench_string(R"(
INPUT(i0)
INPUT(i1)
INPUT(i2)
INPUT(i3)
INPUT(i4)
INPUT(i5)
INPUT(i6)
INPUT(i7)
OUTPUT(w)
OUTPUT(o)
OUTPUT(x)
w = NAND(i0, i1, i2, i3, i4, i5, i6, i7)
o = OR(i0, i1, i2, i3, i4, i5)
x = XOR(i0, i1, i2)
)",
                                       lib);
  const LogicSimulator sim(nl);
  Rng rng(7);
  for (int t = 0; t < 200; ++t) {
    std::vector<bool> in(8);
    for (auto&& b : in) b = rng.bernoulli(0.5);
    bool expect_w = true;
    for (int i = 0; i < 8; ++i) expect_w = expect_w && in[static_cast<std::size_t>(i)];
    bool expect_o = false;
    for (int i = 0; i < 6; ++i) expect_o = expect_o || in[static_cast<std::size_t>(i)];
    const bool expect_x = in[0] ^ in[1] ^ in[2];
    // Outputs come back in netlist id order: w, o, x were declared in that
    // order but instantiated lazily; match by name instead.
    const auto values = LogicSimulator(nl).eval_all(in);
    EXPECT_EQ(values[static_cast<std::size_t>(nl.find("w"))], !expect_w);
    EXPECT_EQ(values[static_cast<std::size_t>(nl.find("o"))], expect_o);
    EXPECT_EQ(values[static_cast<std::size_t>(nl.find("x"))], expect_x);
  }
  (void)sim;
}

TEST_F(BenchIoTest, ErrorsAreLineNumbered) {
  try {
    read_bench_string("INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n", lib);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("FROB"), std::string::npos);
  }
}

TEST_F(BenchIoTest, UndefinedSignalThrows) {
  EXPECT_THROW(
      read_bench_string("INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)\n", lib),
      std::runtime_error);
}

TEST_F(BenchIoTest, RedefinedSignalThrows) {
  EXPECT_THROW(read_bench_string(
                   "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n", lib),
               std::runtime_error);
}

TEST_F(BenchIoTest, UndefinedOutputThrows) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(nope)\n", lib),
               std::runtime_error);
}

TEST_F(BenchIoTest, CycleDetected) {
  EXPECT_THROW(read_bench_string(
                   "INPUT(a)\nOUTPUT(y)\nu = NOT(v)\nv = NOT(u)\ny = NOT(u)\n",
                   lib),
               std::runtime_error);
}

TEST_F(BenchIoTest, PoLoadApplied) {
  BenchReadOptions opt;
  opt.po_load_ff = 42.0;
  const Netlist nl =
      read_bench_string("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", lib, opt);
  EXPECT_DOUBLE_EQ(nl.node(nl.find("y")).po_load_ff, 42.0);
}

TEST_F(BenchIoTest, RoundTripPreservesFunction) {
  const Netlist original = make_c17(lib);
  const std::string text = write_bench_string(original);
  const Netlist reread = read_bench_string(text, lib);
  Rng rng(11);
  EXPECT_TRUE(equivalent(original, reread, rng));
}

TEST_F(BenchIoTest, RoundTripAdder) {
  const Netlist original = make_adder16(lib);
  const std::string text = write_bench_string(original);
  const Netlist reread = read_bench_string(text, lib);
  Rng rng(12);
  EXPECT_TRUE(equivalent(original, reread, rng, /*n_random_vectors=*/256));
}

TEST_F(BenchIoTest, AoiOaiRoundTripByDecomposition) {
  Netlist nl(lib);
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId g = nl.add_gate(CellKind::Aoi21, "g", {a, b, c});
  const NodeId h = nl.add_gate(CellKind::Oai21, "h", {a, g, c});
  nl.mark_output(h, 1.0);
  const Netlist reread = read_bench_string(write_bench_string(nl), lib);
  Rng rng(13);
  EXPECT_TRUE(equivalent(nl, reread, rng));
}

}  // namespace
