// Numerical and structural corner cases across the optimisation stack:
// minimal paths, extreme boundary loads, degenerate constraints.

#include <gtest/gtest.h>

#include "pops/baseline/amps.hpp"
#include "pops/core/protocol.hpp"
#include "pops/liberty/library.hpp"
#include "pops/process/technology.hpp"

namespace {

using namespace pops;
using namespace pops::timing;
using liberty::CellKind;
using liberty::Library;
using process::Technology;

class EdgeCaseTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
  ClosedFormModel dm{lib};

  BoundedPath path_of(std::vector<CellKind> kinds, double cin_x,
                      double term_x) const {
    std::vector<PathStage> stages;
    for (CellKind k : kinds) {
      PathStage st;
      st.kind = k;
      stages.push_back(st);
    }
    return BoundedPath(lib, stages, cin_x * lib.cref_ff(),
                       term_x * lib.cref_ff(), Edge::Rise,
                       dm.default_input_slew_ps());
  }
};

TEST_F(EdgeCaseTest, SingleStagePathHasNoFreeVariables) {
  // One gate: CIN fixed, terminal fixed — Tmin == Tmax == delay.
  const BoundedPath p = path_of({CellKind::Inv}, 2.0, 10.0);
  const core::PathBounds b = core::compute_bounds(p, dm);
  EXPECT_NEAR(b.tmin_ps, b.tmax_ps, 1e-9);
  EXPECT_NEAR(b.tmin_ps, p.delay_ps(dm), 1e-9);

  // Constraint satisfaction degenerates gracefully.
  const core::SizingResult ok =
      core::size_for_constraint(p, dm, b.tmin_ps * 1.5);
  EXPECT_TRUE(ok.feasible);
  const core::SizingResult bad =
      core::size_for_constraint(p, dm, b.tmin_ps * 0.5);
  EXPECT_FALSE(bad.feasible);
}

TEST_F(EdgeCaseTest, TwoStagePath) {
  const BoundedPath p = path_of({CellKind::Inv, CellKind::Inv}, 2.0, 20.0);
  const core::PathBounds b = core::compute_bounds(p, dm);
  EXPECT_LT(b.tmin_ps, b.tmax_ps);
  // One free variable: the fixed point is the one-dimensional optimum.
  for (double f : {0.9, 1.1}) {
    BoundedPath probe = b.at_tmin;
    probe.set_cin(1, probe.cin(1) * f);
    EXPECT_GE(probe.delay_ps(dm), b.tmin_ps * (1.0 - 1e-9));
  }
}

TEST_F(EdgeCaseTest, TinyTerminalLoadStillConverges) {
  const BoundedPath p =
      path_of({CellKind::Inv, CellKind::Nand2, CellKind::Inv}, 2.0, 0.05);
  const core::PathBounds b = core::compute_bounds(p, dm);
  EXPECT_GT(b.tmin_ps, 0.0);
  EXPECT_LE(b.tmin_ps, b.tmax_ps + 1e-9);
}

TEST_F(EdgeCaseTest, HugeTerminalLoadClampsAtMaxDrive) {
  // Terminal far beyond what wmax can drive at taper: the last stages
  // clamp at cin_max and the fixed point still exists.
  const BoundedPath p =
      path_of({CellKind::Inv, CellKind::Inv, CellKind::Inv}, 2.0, 2000.0);
  const core::PathBounds b = core::compute_bounds(p, dm);
  EXPECT_NEAR(b.at_tmin.cin(2), b.at_tmin.cin_max(2), 1e-6);
  EXPECT_LT(b.tmin_ps, b.tmax_ps);
}

TEST_F(EdgeCaseTest, MassiveInputDriveIsLegal) {
  // A huge fixed input drive (strong latch): everything still works and
  // the first free stage is not forced below its minimum.
  const BoundedPath p = path_of({CellKind::Inv, CellKind::Inv}, 50.0, 5.0);
  const core::PathBounds b = core::compute_bounds(p, dm);
  EXPECT_GE(b.at_tmin.cin(1), b.at_tmin.cin_min(1) - 1e-12);
  EXPECT_LE(b.tmin_ps, b.tmax_ps + 1e-9);
}

TEST_F(EdgeCaseTest, AllKindsSurviveTheSizingPipeline) {
  // Every library cell (including AOI/OAI/XOR) can sit on a path.
  for (CellKind k : liberty::all_cell_kinds()) {
    const BoundedPath p = path_of({CellKind::Inv, k, CellKind::Inv}, 2.0, 8.0);
    const core::PathBounds b = core::compute_bounds(p, dm);
    EXPECT_LT(b.tmin_ps, b.tmax_ps * (1.0 + 1e-9)) << liberty::to_string(k);
    const core::SizingResult r =
        core::size_for_constraint(p, dm, 1.4 * b.tmin_ps);
    EXPECT_TRUE(r.feasible) << liberty::to_string(k);
  }
}

TEST_F(EdgeCaseTest, ConstraintExactlyAtTminIsAccepted) {
  const BoundedPath p = path_of({CellKind::Inv, CellKind::Nor2, CellKind::Inv},
                                2.0, 15.0);
  const core::PathBounds b = core::compute_bounds(p, dm);
  const core::SizingResult r = core::size_for_constraint(p, dm, b.tmin_ps);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.delay_ps, b.tmin_ps, 2e-3 * b.tmin_ps);
}

TEST_F(EdgeCaseTest, AmpsOnSingleFreeStage) {
  const BoundedPath p = path_of({CellKind::Inv, CellKind::Inv}, 2.0, 30.0);
  const baseline::AmpsResult r = baseline::minimize_delay(p, dm);
  const core::PathBounds b = core::compute_bounds(p, dm);
  EXPECT_GE(r.delay_ps, b.tmin_ps * 0.999);
  EXPECT_LE(r.delay_ps, b.tmin_ps * 1.15);
}

TEST_F(EdgeCaseTest, ProtocolWithRestructuringDisabled) {
  std::vector<PathStage> stages(5);
  stages[0].kind = CellKind::Inv;
  stages[1].kind = CellKind::Nor3;
  stages[2].kind = CellKind::Inv;
  stages[3].kind = CellKind::Nor3;
  stages[4].kind = CellKind::Inv;
  stages[1].off_path_ff = 60.0 * lib.cref_ff();
  const BoundedPath p(lib, stages, 2.0 * lib.cref_ff(), 10.0 * lib.cref_ff(),
                      Edge::Rise, dm.default_input_slew_ps());

  core::FlimitTable table;
  core::ProtocolOptions opt;
  opt.allow_restructuring = false;
  const core::PathBounds b = core::compute_bounds(p, dm);
  const core::ProtocolResult r =
      core::optimize_path(p, dm, table, 0.9 * b.tmin_ps, opt);
  EXPECT_NE(r.method, core::Method::Restructure);
  EXPECT_EQ(r.gates_restructured, 0u);
}

TEST_F(EdgeCaseTest, EqualEffortOnUniformChainMatchesConstantSensitivity) {
  // On a homogeneous inverter chain with no off-path load, the two
  // distributions coincide to first order (equal sensitivity == equal
  // delay when all stages are identical).
  const BoundedPath p = path_of(std::vector<CellKind>(8, CellKind::Inv),
                                2.0, 25.0);
  const core::PathBounds b = core::compute_bounds(p, dm);
  const double tc = 1.4 * b.tmin_ps;
  const core::SizingResult cs = core::size_for_constraint(p, dm, tc);
  const core::SizingResult ee = core::size_equal_effort(p, dm, tc);
  ASSERT_TRUE(cs.feasible);
  ASSERT_TRUE(ee.feasible);
  EXPECT_NEAR(ee.area_um, cs.area_um, 0.12 * cs.area_um);
}

}  // namespace
