// Quickstart: size one combinational path under a delay constraint, then
// run the same protocol circuit-wide through the unified Optimizer API.
//
// Walks the full POPS flow on a small inverter/NAND chain:
//   1. build the optimization context (technology, library, delay model,
//      Flimit characterization) — one api::OptContext,
//   2. describe a bounded path (fixed input drive, fixed terminal load),
//   3. compute its feasibility bounds Tmax / Tmin (paper §3.1),
//   4. distribute a delay constraint with the constant-sensitivity method
//      (paper §3.2) and print the resulting sizes,
//   5. show what the Fig. 7 protocol decides at several constraints,
//   6. run the full pass pipeline on a circuit via api::Optimizer.

#include <cstdio>

#include "pops/api/api.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/util/table.hpp"

int main() {
  using namespace pops;
  using liberty::CellKind;

  api::OptContext ctx;  // defaults to the paper's 0.25µm process
  const liberty::Library& lib = ctx.lib();
  const timing::DelayModel& dm = ctx.dm();

  // An 8-stage path: inverters and NAND/NOR gates, with a heavy off-path
  // load mid-way (a long wire plus off-path sinks), driven through a fixed
  // 2x-minimum input capacitance, ending on a 20xCREF register load.
  std::vector<timing::PathStage> stages;
  const CellKind kinds[] = {CellKind::Inv,   CellKind::Nand2, CellKind::Inv,
                            CellKind::Nor2,  CellKind::Nand3, CellKind::Inv,
                            CellKind::Nand2, CellKind::Inv};
  for (CellKind k : kinds) {
    timing::PathStage st;
    st.kind = k;
    stages.push_back(st);
  }
  stages[3].off_path_ff = 25.0 * lib.cref_ff();  // the overloaded node

  timing::BoundedPath path(lib, stages, /*cin_first_ff=*/2.0 * lib.cref_ff(),
                           /*terminal_ff=*/20.0 * lib.cref_ff(),
                           timing::Edge::Rise, dm.default_input_slew_ps());

  // --- Bounds ---------------------------------------------------------------
  const core::PathBounds bounds = core::compute_bounds(path, dm);
  std::printf("Path of %zu gates:\n", path.size());
  std::printf("  Tmax (all minimum drive) = %8.1f ps\n", bounds.tmax_ps);
  std::printf("  Tmin (link equations)    = %8.1f ps  (%d sweeps)\n\n",
              bounds.tmin_ps, bounds.sweeps);

  // --- Constraint distribution -----------------------------------------------
  const double tc = 1.4 * bounds.tmin_ps;
  const core::SizingResult sized = core::size_for_constraint(path, dm, tc);
  std::printf("Constraint Tc = 1.4*Tmin = %.1f ps\n", tc);
  std::printf("  constant-sensitivity fit: delay %.1f ps, area %.1f um, a = %.3g ps/fF\n",
              sized.delay_ps, sized.area_um, sized.a);

  util::Table t({"stage", "cell", "CIN (fF)", "CIN/CREF", "drive Wn (um)"});
  for (std::size_t c = 2; c < 5; ++c) t.set_align(c, util::Align::Right);
  for (std::size_t i = 0; i < sized.path.size(); ++i) {
    const liberty::Cell& cell = sized.path.cell(i);
    t.add_row({std::to_string(i), cell.name, util::fmt(sized.path.cin(i), 2),
               util::fmt(sized.path.cin(i) / lib.cref_ff(), 2),
               util::fmt(cell.wn_for_cin(lib.tech(), sized.path.cin(i)), 2)});
  }
  std::printf("%s\n", t.str().c_str());

  // --- Protocol decisions -----------------------------------------------------
  util::Table p({"Tc/Tmin", "domain", "method", "delay (ps)", "area (um)"});
  for (double ratio : {0.9, 1.1, 1.6, 3.0}) {
    const core::ProtocolResult r = core::optimize_path(
        path, dm, ctx.flimits(), ratio * bounds.tmin_ps);
    p.add_row({util::fmt(ratio, 1), core::to_string(r.domain),
               core::to_string(r.method), util::fmt(r.sizing.delay_ps, 1),
               util::fmt(r.total_area_um(), 1)});
  }
  std::printf("Fig.7 protocol decisions:\n%s", p.str().c_str());

  // --- Library characterisation ----------------------------------------------
  util::Table f({"gate (driven by inv)", "Flimit"});
  for (CellKind k : {CellKind::Inv, CellKind::Nand2, CellKind::Nand3,
                     CellKind::Nor2, CellKind::Nor3}) {
    f.add_row({lib.cell(k).name,
               util::fmt(ctx.flimits().get(dm, CellKind::Inv, k), 2)});
  }
  std::printf("\nLoad buffer insertion limits (Table 2 metric):\n%s",
              f.str().c_str());

  // --- Circuit-wide: the unified Optimizer API --------------------------------
  // The same protocol applied to a whole netlist, composed with the
  // structural passes (shield -> cancel-inverters -> sweep-dead ->
  // protocol) and reported per pass.
  netlist::Netlist nl = netlist::make_benchmark(lib, "c432");
  api::Optimizer optimizer(ctx);
  const api::PipelineReport report = optimizer.run_relative(nl, 0.8);

  std::printf("\nOptimizer on c432 (Tc = 80%% of initial delay = %.1f ps):\n",
              report.tc_ps);
  util::Table r({"pass", "delay (ps)", "area (um)", "changed", "ms"});
  for (std::size_t c = 1; c < 5; ++c) r.set_align(c, util::Align::Right);
  r.add_row({"(initial)", util::fmt(report.initial_delay_ps, 1),
             util::fmt(report.initial_area_um, 1), "", ""});
  for (const api::PassReport& pr : report.passes)
    r.add_row({pr.pass_name, util::fmt(pr.delay_after_ps, 1),
               util::fmt(pr.area_after_um, 1), pr.changed ? "yes" : "no",
               util::fmt(pr.runtime_ms, 1)});
  std::printf("%s", r.str().c_str());
  std::printf("constraint %s: %.1f ps achieved, %zu paths optimized, "
              "%zu buffers inserted\n",
              report.met ? "MET" : "NOT met", report.final_delay_ps,
              report.total_paths_optimized(), report.total_buffers_inserted());
  return report.met ? 0 : 1;
}
