// Full circuit flow on an ISCAS-style benchmark — the way POPS is meant to
// be used on a real design, through the unified pipeline API:
//
//   1. load the circuit (.bench or built-in benchmark),
//   2. run STA, look at the K most critical paths,
//   3. pick a delay constraint, run the standard pass pipeline
//      (shield -> cancel-inverters -> sweep-dead -> Fig. 7 protocol),
//   4. read the per-pass reports and the before/after power figures.
//
// Usage: example_iscas_flow [circuit] [tc_ratio]
//   circuit   benchmark name (default c880)
//   tc_ratio  target as a fraction of the initial critical delay (0.8)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "pops/api/api.hpp"
#include "pops/core/power.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/timing/report.hpp"
#include "pops/timing/sta.hpp"
#include "pops/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pops;

  const std::string circuit = argc > 1 ? argv[1] : "c880";
  const double ratio = argc > 2 ? std::atof(argv[2]) : 0.8;

  api::OptContext ctx;
  const timing::DelayModel& dm = ctx.dm();

  netlist::Netlist nl = netlist::make_benchmark(ctx.lib(), circuit);
  const netlist::NetlistStats stats = nl.stats();
  std::printf("circuit %s: %zu gates, %zu PIs, %zu POs, depth %zu\n",
              circuit.c_str(), stats.n_gates, stats.n_inputs, stats.n_outputs,
              stats.depth);

  // --- initial timing ---------------------------------------------------------
  const timing::Sta sta_before(nl, dm);
  const timing::StaResult before = sta_before.run();
  std::printf("\ninitial critical delay: %.1f ps\n", before.critical_delay_ps);

  const auto paths = sta_before.k_critical_paths(before, 5);
  util::Table pt({"#", "delay (ps)", "gates", "endpoint"});
  pt.set_align(1, util::Align::Right);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    pt.add_row({std::to_string(i + 1), util::fmt(paths[i].delay_ps, 1),
                std::to_string(paths[i].points.size() - 1),
                nl.node(paths[i].points.back().node).name});
  }
  std::printf("top critical paths:\n%s\n", pt.str().c_str());

  util::Rng rng_before = ctx.make_rng(1);
  const core::PowerReport p_before = core::estimate_power(nl, rng_before);

  // --- optimise through the pipeline API ---------------------------------------
  const double tc = ratio * before.critical_delay_ps;
  std::printf("running the optimization pipeline for Tc = %.1f ps "
              "(%.0f%% of initial)...\n", tc, 100.0 * ratio);

  api::Optimizer optimizer(ctx);
  const api::PipelineReport report = optimizer.run(nl, tc);

  // --- per-pass report ----------------------------------------------------------
  util::Table pp({"pass", "delay (ps)", "area (um)", "buffers", "rewired",
                  "removed", "paths", "ms"});
  for (std::size_t c = 1; c < 8; ++c) pp.set_align(c, util::Align::Right);
  pp.add_row({"(initial)", util::fmt(report.initial_delay_ps, 1),
              util::fmt(report.initial_area_um, 1), "", "", "", "", ""});
  for (const api::PassReport& pr : report.passes)
    pp.add_row({pr.pass_name, util::fmt(pr.delay_after_ps, 1),
                util::fmt(pr.area_after_um, 1),
                std::to_string(pr.buffers_inserted),
                std::to_string(pr.sinks_rewired),
                std::to_string(pr.gates_removed),
                std::to_string(pr.paths_optimized),
                util::fmt(pr.runtime_ms, 1)});
  std::printf("\npass pipeline:\n%s", pp.str().c_str());

  // --- before/after -------------------------------------------------------------
  util::Rng rng_after = ctx.make_rng(1);
  const core::PowerReport p_after = core::estimate_power(nl, rng_after);

  util::Table t({"metric", "before", "after"});
  t.set_align(1, util::Align::Right);
  t.set_align(2, util::Align::Right);
  t.add_row({"critical delay (ps)", util::fmt(report.initial_delay_ps, 1),
             util::fmt(report.final_delay_ps, 1)});
  t.add_row({"sum W (um)", util::fmt(p_before.area_um, 1),
             util::fmt(p_after.area_um, 1)});
  t.add_row({"dynamic power (uW @100MHz)", util::fmt(p_before.dynamic_uw, 1),
             util::fmt(p_after.dynamic_uw, 1)});
  t.add_row({"leakage (uW)", util::fmt(p_before.leakage_uw, 2),
             util::fmt(p_after.leakage_uw, 2)});
  std::printf("\n%s", t.str().c_str());
  std::printf("\nconstraint %s after %zu path optimisations\n",
              report.met ? "MET" : "NOT met", report.total_paths_optimized());

  // Per-path protocol decisions (first few).
  if (const core::CircuitResult* result = report.protocol();
      result && !result->per_path.empty()) {
    util::Table d({"path", "domain", "method", "delay (ps)", "area (um)"});
    const std::size_t n = std::min<std::size_t>(result->per_path.size(), 6);
    for (std::size_t i = 0; i < n; ++i) {
      const core::ProtocolResult& pr = result->per_path[i];
      d.add_row({std::to_string(i + 1), core::to_string(pr.domain),
                 core::to_string(pr.method), util::fmt(pr.sizing.delay_ps, 1),
                 util::fmt(pr.total_area_um(), 1)});
    }
    std::printf("\nprotocol decisions (first %zu paths):\n%s", n,
                d.str().c_str());
  }

  // Final sign-off style reports (STA over the possibly-restructured
  // netlist).
  const timing::Sta sta_after(nl, dm);
  const timing::StaResult final_sta = sta_after.run();
  timing::ReportOptions ropt;
  ropt.tc_ps = tc;
  ropt.max_paths = 1;
  std::printf("\n%s", timing::report_paths(nl, sta_after, final_sta, ropt).c_str());
  std::printf("%s",
              timing::report_slack_histogram(nl, sta_after, final_sta, ropt).c_str());
  return report.met ? 0 : 1;
}
