// Full circuit flow on an ISCAS-style benchmark — the way POPS is meant to
// be used on a real design:
//
//   1. load the circuit (.bench or built-in benchmark),
//   2. run STA, look at the K most critical paths,
//   3. pick a delay constraint, run the Fig. 7 protocol circuit-wide,
//   4. re-verify with STA and report delay / area / power before-after.
//
// Usage: example_iscas_flow [circuit] [tc_ratio]
//   circuit   benchmark name (default c880)
//   tc_ratio  target as a fraction of the initial critical delay (0.8)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "pops/core/power.hpp"
#include "pops/core/protocol.hpp"
#include "pops/liberty/library.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/process/technology.hpp"
#include "pops/timing/report.hpp"
#include "pops/timing/sta.hpp"
#include "pops/util/rng.hpp"
#include "pops/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pops;

  const std::string circuit = argc > 1 ? argv[1] : "c880";
  const double ratio = argc > 2 ? std::atof(argv[2]) : 0.8;

  const liberty::Library lib(process::Technology::cmos025());
  const timing::DelayModel dm(lib);

  netlist::Netlist nl = netlist::make_benchmark(lib, circuit);
  const netlist::NetlistStats stats = nl.stats();
  std::printf("circuit %s: %zu gates, %zu PIs, %zu POs, depth %zu\n",
              circuit.c_str(), stats.n_gates, stats.n_inputs, stats.n_outputs,
              stats.depth);

  // --- initial timing ---------------------------------------------------------
  const timing::Sta sta(nl, dm);
  const timing::StaResult before = sta.run();
  std::printf("\ninitial critical delay: %.1f ps\n", before.critical_delay_ps);

  const auto paths = sta.k_critical_paths(before, 5);
  util::Table pt({"#", "delay (ps)", "gates", "endpoint"});
  pt.set_align(1, util::Align::Right);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    pt.add_row({std::to_string(i + 1), util::fmt(paths[i].delay_ps, 1),
                std::to_string(paths[i].points.size() - 1),
                nl.node(paths[i].points.back().node).name});
  }
  std::printf("top critical paths:\n%s\n", pt.str().c_str());

  util::Rng rng_before(1);
  const core::PowerReport p_before = core::estimate_power(nl, rng_before);

  // --- optimise ----------------------------------------------------------------
  const double tc = ratio * before.critical_delay_ps;
  std::printf("running the optimization protocol for Tc = %.1f ps "
              "(%.0f%% of initial)...\n", tc, 100.0 * ratio);

  core::FlimitTable table;
  const core::CircuitResult result =
      core::optimize_circuit(nl, dm, table, tc, {});

  // --- report -------------------------------------------------------------------
  util::Rng rng_after(1);
  const core::PowerReport p_after = core::estimate_power(nl, rng_after);

  util::Table t({"metric", "before", "after"});
  t.set_align(1, util::Align::Right);
  t.set_align(2, util::Align::Right);
  t.add_row({"critical delay (ps)", util::fmt(before.critical_delay_ps, 1),
             util::fmt(result.achieved_delay_ps, 1)});
  t.add_row({"sum W (um)", util::fmt(p_before.area_um, 1),
             util::fmt(p_after.area_um, 1)});
  t.add_row({"dynamic power (uW @100MHz)", util::fmt(p_before.dynamic_uw, 1),
             util::fmt(p_after.dynamic_uw, 1)});
  t.add_row({"leakage (uW)", util::fmt(p_before.leakage_uw, 2),
             util::fmt(p_after.leakage_uw, 2)});
  std::printf("\n%s", t.str().c_str());
  std::printf("\nconstraint %s after %zu path optimisations\n",
              result.met ? "MET" : "NOT met", result.paths_optimized);

  // Per-path protocol decisions (first few).
  if (!result.per_path.empty()) {
    util::Table d({"path", "domain", "method", "delay (ps)", "area (um)"});
    const std::size_t n = std::min<std::size_t>(result.per_path.size(), 6);
    for (std::size_t i = 0; i < n; ++i) {
      const core::ProtocolResult& pr = result.per_path[i];
      d.add_row({std::to_string(i + 1), core::to_string(pr.domain),
                 core::to_string(pr.method), util::fmt(pr.sizing.delay_ps, 1),
                 util::fmt(pr.total_area_um(), 1)});
    }
    std::printf("\nprotocol decisions (first %zu paths):\n%s", n,
                d.str().c_str());
  }

  // Final sign-off style reports.
  const timing::StaResult final_sta = sta.run();
  timing::ReportOptions ropt;
  ropt.tc_ps = tc;
  ropt.max_paths = 1;
  std::printf("\n%s", timing::report_paths(nl, sta, final_sta, ropt).c_str());
  std::printf("%s",
              timing::report_slack_histogram(nl, sta, final_sta, ropt).c_str());
  return result.met ? 0 : 1;
}
