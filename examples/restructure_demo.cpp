// De Morgan restructuring demo — the paper's §4.2 on a real netlist:
// rewrite the inefficient NOR gates of a circuit as NAND + inverters,
// prove functional equivalence by exhaustive/random simulation, and show
// what the rewrite buys on the critical path.

#include <cstdio>

#include "pops/api/api.hpp"
#include "pops/core/bounds.hpp"
#include "pops/core/restructure.hpp"
#include "pops/core/sensitivity.hpp"
#include "pops/netlist/bench_io.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/netlist/logic_sim.hpp"
#include "pops/process/technology.hpp"
#include "pops/timing/sta.hpp"
#include "pops/util/rng.hpp"
#include "pops/util/table.hpp"

int main() {
  using namespace pops;
  using liberty::CellKind;

  api::OptContext ctx;
  const liberty::Library& lib = ctx.lib();
  const timing::DelayModel& dm = ctx.dm();

  // --- netlist-level rewrite with equivalence proof ----------------------------
  netlist::Netlist nl = netlist::make_benchmark(lib, "fpd");
  netlist::Netlist original = nl;

  std::vector<netlist::NodeId> nors;
  for (netlist::NodeId id : nl.gates()) {
    const CellKind k = nl.node(id).kind;
    if (k == CellKind::Nor2 || k == CellKind::Nor3 || k == CellKind::Nor4)
      nors.push_back(id);
  }
  std::printf("circuit fpd: %zu gates, of which %zu NOR gates\n",
              nl.stats().n_gates, nors.size());

  for (netlist::NodeId id : nors) core::demorgan_nor_to_nand(nl, id);
  nl.validate();

  util::Rng rng = ctx.make_rng(42);
  const bool equal = netlist::equivalent(original, nl, rng, 512);
  std::printf("rewrote %zu NORs -> NAND + inverters; equivalence check: %s\n",
              nors.size(), equal ? "PASS" : "FAIL");
  std::printf("gate count %zu -> %zu (conservation inverters added)\n\n",
              original.stats().n_gates, nl.stats().n_gates);

  // --- what it buys on a critical path ------------------------------------------
  // Path-level view: the NOR-heavy path of the original circuit vs its
  // De Morgan rewrite, both sized to the same constraint.
  const timing::Sta sta(original, dm);
  const timing::TimedPath tp = sta.critical_path(sta.run());
  timing::BoundedPath path =
      timing::BoundedPath::extract(original, tp, dm.default_input_slew_ps());

  core::FlimitTable& table = ctx.flimits();
  const core::PathBounds bounds = core::compute_bounds(path, dm);
  const core::RestructureResult rr = core::restructure_path(path, dm, table);

  util::Table t({"implementation", "Tmin (ps)", "area @1.3Tmin (um)"});
  t.set_align(1, util::Align::Right);
  t.set_align(2, util::Align::Right);

  const double tc = 1.3 * bounds.tmin_ps;
  const core::SizingResult s_orig = core::size_for_constraint(path, dm, tc);
  t.add_row({"original (NOR)", util::fmt(bounds.tmin_ps, 1),
             s_orig.feasible ? util::fmt(s_orig.area_um, 1) : "infeasible"});

  if (rr.gates_restructured > 0) {
    const core::PathBounds rb = core::compute_bounds(rr.path, dm);
    const core::SizingResult s_re = core::size_for_constraint(rr.path, dm, tc);
    t.add_row({"restructured (NAND)", util::fmt(rb.tmin_ps, 1),
               s_re.feasible
                   ? util::fmt(s_re.area_um + rr.off_path_area_um, 1)
                   : "infeasible"});
    std::printf("critical path: %zu NOR stage(s) rewritten, %zu off-path "
                "inverters charged\n",
                rr.gates_restructured, rr.off_path_inverters);
  } else {
    std::printf("critical path has no overloaded NOR stages at its current "
                "sizing — nothing to rewrite\n");
  }
  std::printf("%s", t.str().c_str());
  return equal ? 0 : 1;
}
