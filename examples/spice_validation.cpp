// Transistor-level validation demo — what the paper does with HSPICE:
// size a path with the closed-form flow, expand it to an alpha-power-law
// transistor netlist, simulate the transient, and compare the model's
// per-stage delays against the measured waveform crossings.

#include <cstdio>

#include "pops/api/api.hpp"
#include "pops/core/bounds.hpp"
#include "pops/core/sensitivity.hpp"
#include "pops/spice/measure.hpp"
#include "pops/timing/delay_model.hpp"
#include "pops/util/stats.hpp"
#include "pops/util/table.hpp"

int main() {
  using namespace pops;
  using liberty::CellKind;

  api::OptContext ctx;
  const liberty::Library& lib = ctx.lib();
  const timing::DelayModel& dm = ctx.dm();

  // A mixed path using the transistor-expandable cells.
  const std::vector<CellKind> kinds = {CellKind::Inv,  CellKind::Nand2,
                                       CellKind::Inv,  CellKind::Nor2,
                                       CellKind::Nand3, CellKind::Inv};
  std::vector<timing::PathStage> stages;
  for (CellKind k : kinds) {
    timing::PathStage st;
    st.kind = k;
    stages.push_back(st);
  }
  timing::BoundedPath path(lib, stages, 2.0 * lib.cref_ff(),
                           12.0 * lib.cref_ff(), timing::Edge::Rise,
                           dm.default_input_slew_ps());

  const core::PathBounds bounds = core::compute_bounds(path, dm);
  const core::SizingResult sized =
      core::size_for_constraint(path, dm, 1.25 * bounds.tmin_ps);
  std::printf("6-gate path sized for Tc = 1.25*Tmin = %.1f ps "
              "(model delay %.1f ps)\n\n",
              1.25 * bounds.tmin_ps, sized.delay_ps);

  // Expand to transistors and measure.
  spice::ChainSpec spec;
  spec.kinds = kinds;
  for (std::size_t i = 0; i < sized.path.size(); ++i)
    spec.wn_um.push_back(sized.path.cell(i).wn_for_cin(lib.tech(),
                                                       sized.path.cin(i)));
  spec.terminal_load_ff = 12.0 * lib.cref_ff();
  spec.input_ramp_ps = dm.default_input_slew_ps();
  const spice::ChainMeasurement m = spice::measure_chain(lib, spec);

  const std::vector<double> model_stage = sized.path.stage_delays_ps(dm);

  util::Table t({"stage", "cell", "Wn (um)", "model (ps)", "spice (ps)",
                 "delta"});
  for (std::size_t c = 2; c < 6; ++c) t.set_align(c, util::Align::Right);
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    t.add_row({std::to_string(i), lib.cell(kinds[i]).name,
               util::fmt(spec.wn_um[i], 2), util::fmt(model_stage[i], 1),
               util::fmt(m.stage_delay_ps[i], 1),
               util::fmt_percent(
                   util::rel_diff(model_stage[i], m.stage_delay_ps[i]), 0)});
  }
  std::printf("%s", t.str().c_str());
  std::printf("\npath delay: model %.1f ps, transistor-level %.1f ps "
              "(delta %.0f%%)\n",
              sized.delay_ps, m.path_delay_ps,
              100.0 * util::rel_diff(sized.delay_ps, m.path_delay_ps));
  std::printf("\n(one input polarity simulated; the model figure is the "
              "worst-edge chain, so a\nmodest systematic gap is expected — "
              "see EXPERIMENTS.md for the calibration band)\n");
  return 0;
}
