// File-based CLI: optimise an ISCAS-85 .bench netlist under a delay
// constraint and write the results — the adoption path for a user with
// their own circuits.
//
// Usage:
//   example_optimize_bench INPUT.bench TC_PS [OUTPUT.bench] [SIZES.csv]
//
// Reads the netlist (AND/OR/wide gates are decomposed onto the library),
// runs the Fig. 7 protocol circuit-wide for the given constraint (in ps),
// then writes the sized netlist back as .bench (structure) plus a CSV of
// per-gate drives (sizes are not representable in .bench), and prints the
// before/after report. Exits 0 iff the constraint was met.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "pops/api/api.hpp"
#include "pops/core/power.hpp"
#include "pops/netlist/bench_io.hpp"
#include "pops/timing/sta.hpp"
#include "pops/util/csv.hpp"
#include "pops/util/table.hpp"
#include "pops/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace pops;

  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s INPUT.bench TC_PS [OUTPUT.bench] [SIZES.csv]\n",
                 argv[0]);
    return 2;
  }
  const std::string input = argv[1];
  const double tc_ps = std::atof(argv[2]);
  const std::string output = argc > 3 ? argv[3] : "";
  const std::string sizes_csv = argc > 4 ? argv[4] : "";
  if (!(tc_ps > 0.0)) {
    std::fprintf(stderr, "error: TC_PS must be a positive number of ps\n");
    return 2;
  }

  api::OptContext ctx;
  const liberty::Library& lib = ctx.lib();
  const timing::DelayModel& dm = ctx.dm();

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", input.c_str());
    return 2;
  }
  netlist::BenchReadOptions ropt;
  ropt.name = input;
  netlist::Netlist nl = [&] {
    try {
      return netlist::read_bench(in, lib, ropt);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "parse error: %s\n", e.what());
      std::exit(2);
    }
  }();

  const netlist::NetlistStats stats = nl.stats();
  std::printf("%s: %zu gates, %zu PIs, %zu POs, depth %zu\n", input.c_str(),
              stats.n_gates, stats.n_inputs, stats.n_outputs, stats.depth);

  const timing::Sta sta(nl, dm);
  const double before = sta.run().critical_delay_ps;
  std::printf("initial critical delay %.1f ps, target %.1f ps\n", before,
              tc_ps);

  const api::Optimizer optimizer(ctx);
  const api::PipelineReport result = optimizer.run(nl, tc_ps);

  util::Rng rng = ctx.make_rng(1);
  const core::PowerReport power = core::estimate_power(nl, rng);
  std::printf("final critical delay %.1f ps (%s), sum W %.1f um, "
              "%.1f uW @100MHz, %zu paths optimised, %zu shield buffers\n",
              result.final_delay_ps, result.met ? "met" : "NOT met",
              power.area_um, power.total_uw, result.total_paths_optimized(),
              result.total_buffers_inserted());

  if (!output.empty()) {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", output.c_str());
      return 2;
    }
    netlist::write_bench(out, nl);
    std::printf("netlist written to %s\n", output.c_str());
  }
  if (!sizes_csv.empty()) {
    util::CsvWriter csv(sizes_csv);
    csv.row(std::vector<std::string>{"gate", "cell", "wn_um", "cin_ff"});
    for (netlist::NodeId g : nl.gates()) {
      csv.row(std::vector<std::string>{
          nl.node(g).name, lib.cell(nl.node(g).kind).name,
          util::fmt(nl.drive(g), 4), util::fmt(nl.cin_ff(g), 4)});
    }
    std::printf("sizes written to %s\n", sizes_csv.c_str());
  }
  return result.met ? 0 : 1;
}
