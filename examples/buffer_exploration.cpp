// Buffer insertion exploration — the paper's §4.1 story on one overloaded
// node: characterise the library (Flimit per driver/gate pair), identify
// the critical node of a path, and compare the insertion styles.

#include <cstdio>

#include "pops/api/api.hpp"
#include "pops/core/bounds.hpp"
#include "pops/util/table.hpp"

int main() {
  using namespace pops;
  using liberty::CellKind;

  api::OptContext ctx;
  const liberty::Library& lib = ctx.lib();
  const timing::DelayModel& dm = ctx.dm();
  core::FlimitTable& table = ctx.flimits();

  // --- library characterisation (the protocol's first step) -------------------
  std::printf("Flimit characterisation (fanout above which a buffer wins):\n");
  util::Table f({"driver \\ gate", "inv", "nand2", "nand3", "nor2", "nor3"});
  for (CellKind driver : {CellKind::Inv, CellKind::Nand2, CellKind::Nor2}) {
    std::vector<std::string> row{lib.cell(driver).name};
    for (CellKind gate : {CellKind::Inv, CellKind::Nand2, CellKind::Nand3,
                          CellKind::Nor2, CellKind::Nor3})
      row.push_back(util::fmt(table.get(dm, driver, gate), 2));
    f.add_row(row);
  }
  std::printf("%s\n", f.str().c_str());

  // --- a path with one massively overloaded node ------------------------------
  std::vector<timing::PathStage> stages(7);
  for (auto& st : stages) st.kind = CellKind::Inv;
  stages[3].off_path_ff = 150.0 * lib.cref_ff();  // e.g. a clock-ish fanout
  timing::BoundedPath path(lib, stages, 2.0 * lib.cref_ff(),
                           10.0 * lib.cref_ff(), timing::Edge::Rise,
                           dm.default_input_slew_ps());

  const core::PathBounds bounds = core::compute_bounds(path, dm);
  std::printf("7-inverter path, %0.f fF off-path load on node 3\n",
              150.0 * lib.cref_ff());
  std::printf("  sizing-only Tmin: %.1f ps\n", bounds.tmin_ps);

  const auto crit = core::critical_nodes(bounds.at_tmin, dm, table);
  std::printf("  critical nodes at the Tmin sizing:");
  for (std::size_t i : crit) std::printf(" %zu", i);
  std::printf("\n\n");

  util::Table t({"insertion style", "Tmin (ps)", "gain", "buffers",
                 "shield area (um)"});
  t.set_align(1, util::Align::Right);
  t.set_align(2, util::Align::Right);
  struct Row {
    const char* label;
    core::InsertionStyle style;
  };
  for (const Row& row : {Row{"in-path (paper Fig. 5)",
                             core::InsertionStyle::InPathOnly},
                         Row{"shield (off-path)",
                             core::InsertionStyle::ShieldOnly},
                         Row{"auto", core::InsertionStyle::Auto}}) {
    core::BufferInsertionResult r =
        core::insert_buffers_local(bounds.at_tmin, dm, table, row.style);
    const double tmin =
        r.buffers_inserted
            ? core::size_for_tmin(r.path, dm).delay_ps(dm)
            : bounds.tmin_ps;
    t.add_row({row.label, util::fmt(tmin, 1),
               util::fmt_percent((bounds.tmin_ps - tmin) / bounds.tmin_ps, 1),
               std::to_string(r.buffers_inserted),
               util::fmt(r.shield_area_um, 1)});
  }
  std::printf("%s", t.str().c_str());
  return 0;
}
