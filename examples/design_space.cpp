// Design-space exploration — sweep the delay constraint across the whole
// feasible range of a benchmark path and watch the Fig. 7 protocol change
// its mind: infeasible -> structure modification, hard -> buffering +
// global sizing, medium -> buffers for area, weak -> sizing only.
//
// Usage: example_design_space [circuit]

#include <cstdio>
#include <string>

#include "pops/api/api.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/timing/sta.hpp"
#include "pops/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pops;

  const std::string circuit = argc > 1 ? argv[1] : "c1355";
  api::OptContext ctx;
  const timing::DelayModel& dm = ctx.dm();

  netlist::Netlist nl = netlist::make_benchmark(ctx.lib(), circuit);
  const timing::Sta sta(nl, dm);
  const timing::TimedPath tp = sta.critical_path(sta.run());
  timing::BoundedPath path =
      timing::BoundedPath::extract(nl, tp, dm.default_input_slew_ps());

  core::FlimitTable& table = ctx.flimits();
  const core::PathBounds bounds = core::compute_bounds(path, dm);
  std::printf("critical path of %s: %zu gates, Tmin = %.1f ps, "
              "Tmax = %.1f ps\n\n",
              circuit.c_str(), path.size(), bounds.tmin_ps, bounds.tmax_ps);

  util::Table t({"Tc/Tmin", "domain", "chosen method", "delay (ps)",
                 "area (um)", "buffers", "rewrites"});
  t.set_align(3, util::Align::Right);
  t.set_align(4, util::Align::Right);

  for (double ratio : {0.90, 0.97, 1.05, 1.15, 1.4, 1.8, 2.2, 2.8, 3.5}) {
    const double tc = ratio * bounds.tmin_ps;
    const core::ProtocolResult r = core::optimize_path(path, dm, table, tc);
    t.add_row({util::fmt(ratio, 2), core::to_string(r.domain),
               core::to_string(r.method),
               util::fmt(r.sizing.delay_ps, 1),
               util::fmt(r.total_area_um(), 1),
               std::to_string(r.buffers_inserted),
               std::to_string(r.gates_restructured)});
  }
  std::printf("%s", t.str().c_str());
  std::printf("\nreading: delay constraint satisfied at minimum area in every"
              "\nfeasible domain; below Tmin the protocol modifies the path"
              "\nstructure (buffers, then De Morgan NOR->NAND rewrites).\n");
  return 0;
}
